// Package workload generates the query streams of the paper's evaluation
// (§V-A): a YCSB-derived benchmark extended with configurable key-value
// sizes, key distributions, and GET/SET ratios.
//
// The benchmark matrix is 4 datasets × 3 GET ratios × 2 key distributions =
// 24 workloads:
//
//	datasets    K8 (8 B key / 8 B value), K16 (16/64), K32 (32/256),
//	            K128 (128/1024); Fig 4 additionally uses a 32/512 variant.
//	GET ratios  100 %, 95 %, 50 % (YCSB workloads C, B, A)
//	distributions uniform (U) and Zipf skewness 0.99 (S)
//
// Workload names follow the paper's notation, e.g. "K32-G95-U".
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/proto"
	"repro/internal/zipf"
)

// Spec describes one workload.
type Spec struct {
	Name      string
	KeySize   int
	ValueSize int
	// GetRatio is the fraction of GET queries; the rest are SETs.
	GetRatio float64
	// Skew is the Zipf exponent of key popularity; 0 means uniform.
	Skew float64
}

// String returns the paper-style name.
func (s Spec) String() string { return s.Name }

// specName builds the paper's notation: K<keysize>-G<get%>-<U|S>.
func specName(keySize int, getRatio, skew float64) string {
	dist := "U"
	if skew > 0 {
		dist = "S"
	}
	return fmt.Sprintf("K%d-G%d-%s", keySize, int(getRatio*100+0.5), dist)
}

// NewSpec builds a Spec with the paper's naming convention.
func NewSpec(keySize, valueSize int, getRatio, skew float64) Spec {
	if keySize < 8 {
		panic("workload: key size must be >= 8 (rank encoding)")
	}
	if getRatio < 0 || getRatio > 1 {
		panic("workload: GET ratio out of [0,1]")
	}
	return Spec{
		Name:      specName(keySize, getRatio, skew),
		KeySize:   keySize,
		ValueSize: valueSize,
		GetRatio:  getRatio,
		Skew:      skew,
	}
}

// ZipfYCSB is the skewness of YCSB's and the paper's skewed workloads.
const ZipfYCSB = 0.99

// Datasets of the paper's benchmark (§V-A).
var (
	DatasetK8   = [2]int{8, 8}
	DatasetK16  = [2]int{16, 64}
	DatasetK32  = [2]int{32, 256}
	DatasetK128 = [2]int{128, 1024}
	// DatasetK32Fig4 is the 32-byte-key variant used in the motivation
	// experiments (Fig 4-5 use a 512-byte value).
	DatasetK32Fig4 = [2]int{32, 512}
)

// StandardSpecs returns the paper's 24 evaluation workloads in a stable
// order: datasets K8→K128, GET ratio 100→50, uniform then skewed.
func StandardSpecs() []Spec {
	var specs []Spec
	for _, ds := range [][2]int{DatasetK8, DatasetK16, DatasetK32, DatasetK128} {
		for _, g := range []float64{1.0, 0.95, 0.5} {
			for _, s := range []float64{0, ZipfYCSB} {
				specs = append(specs, NewSpec(ds[0], ds[1], g, s))
			}
		}
	}
	return specs
}

// SpecByName returns the standard spec with the given paper-style name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range StandardSpecs() {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return Spec{}, false
}

// Generator produces queries for a Spec over a key population of n objects.
// It is not safe for concurrent use.
type Generator struct {
	Spec Spec
	n    uint64
	keys *zipf.Generator
	rng  *rand.Rand
	val  []byte
	// Seq tags SET values so correctness checks can verify freshness.
	seq uint64
}

// NewGenerator returns a generator over a population of n keys.
func NewGenerator(spec Spec, n uint64, seed int64) *Generator {
	if n < 1 {
		panic("workload: population must be >= 1")
	}
	g := &Generator{
		Spec: spec,
		n:    n,
		keys: zipf.NewGenerator(n, spec.Skew, seed),
		rng:  rand.New(rand.NewSource(seed + 1)),
		val:  make([]byte, spec.ValueSize),
	}
	for i := range g.val {
		g.val[i] = byte('a' + i%26)
	}
	return g
}

// Population returns the key-space size.
func (g *Generator) Population() uint64 { return g.n }

// PopulationForMemory returns how many objects of this spec fit in memBytes,
// accounting for the slab allocator's power-of-two chunk classes (64-byte
// minimum, 6-byte header) the way the paper sizes its data sets against the
// 1908 MB shared arena (§V-A). Matching the allocator's rounding keeps the
// generated key population equal to what the store can actually hold, so
// warmed stores serve ~100% hit rates.
func PopulationForMemory(spec Spec, memBytes int64) uint64 {
	size := int64(6 + spec.KeySize + spec.ValueSize)
	chunk := int64(64)
	for chunk < size {
		chunk *= 2
	}
	n := memBytes / chunk
	if n < 1 {
		n = 1
	}
	return uint64(n)
}

// KeyAt writes the key bytes for rank into dst (len = KeySize): the rank in
// the first 8 bytes and a seeded deterministic fill after.
func (g *Generator) KeyAt(rank uint64, dst []byte) []byte {
	if cap(dst) < g.Spec.KeySize {
		dst = make([]byte, g.Spec.KeySize)
	}
	dst = dst[:g.Spec.KeySize]
	binary.LittleEndian.PutUint64(dst, rank)
	for i := 8; i < len(dst); i++ {
		dst[i] = byte('k' + (rank+uint64(i))%13)
	}
	return dst
}

// Next produces the next query. Key and Value alias generator-owned buffers
// only until the next call if copy is false; with copy true they are fresh
// allocations.
func (g *Generator) Next(copyBytes bool) proto.Query {
	rank := g.keys.Next()
	var q proto.Query
	key := g.KeyAt(rank, nil)
	if g.rng.Float64() < g.Spec.GetRatio {
		q = proto.Query{Op: proto.OpGet, Key: key}
	} else {
		g.seq++
		val := g.val
		if copyBytes {
			val = make([]byte, len(g.val))
			copy(val, g.val)
		}
		if len(val) >= 8 {
			binary.LittleEndian.PutUint64(val, g.seq)
		}
		q = proto.Query{Op: proto.OpSet, Key: key, Value: val}
	}
	return q
}

// Batch produces n queries.
func (g *Generator) Batch(n int) []proto.Query {
	out := make([]proto.Query, n)
	for i := range out {
		out[i] = g.Next(true)
	}
	return out
}

// Mix describes the realized composition of a produced batch.
type Mix struct {
	Gets, Sets  int
	AvgKeyLen   float64
	AvgValueLen float64
}

// MeasureMix computes the realized mix of queries.
func MeasureMix(queries []proto.Query) Mix {
	var m Mix
	if len(queries) == 0 {
		return m
	}
	var keyBytes, valBytes int
	for _, q := range queries {
		keyBytes += len(q.Key)
		if q.Op == proto.OpGet {
			m.Gets++
		} else {
			m.Sets++
			valBytes += len(q.Value)
		}
	}
	m.AvgKeyLen = float64(keyBytes) / float64(len(queries))
	if m.Sets > 0 {
		m.AvgValueLen = float64(valBytes) / float64(m.Sets)
	}
	return m
}

// Alternator switches between two specs with a fixed period, reproducing the
// paper's dynamic-workload experiments (Figs 20-21: K8-G50-U ↔ K16-G95-S
// alternating every cycle).
type Alternator struct {
	A, B    *Generator
	period  uint64 // queries per phase
	count   uint64
	current *Generator
}

// NewAlternator alternates between generators a and b every period queries.
func NewAlternator(a, b *Generator, period uint64) *Alternator {
	if period < 1 {
		panic("workload: alternation period must be >= 1")
	}
	return &Alternator{A: a, B: b, period: period, current: a}
}

// Next produces the next query, switching generator at phase boundaries.
func (alt *Alternator) Next(copyBytes bool) proto.Query {
	phase := (alt.count / alt.period) % 2
	if phase == 0 {
		alt.current = alt.A
	} else {
		alt.current = alt.B
	}
	alt.count++
	return alt.current.Next(copyBytes)
}

// CurrentSpec returns the spec of the phase the alternator is in.
func (alt *Alternator) CurrentSpec() Spec { return alt.current.Spec }

// Batch produces n queries (possibly spanning a phase boundary).
func (alt *Alternator) Batch(n int) []proto.Query {
	out := make([]proto.Query, n)
	for i := range out {
		out[i] = alt.Next(true)
	}
	return out
}

package workload

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/proto"
)

func TestStandardSpecs24(t *testing.T) {
	specs := StandardSpecs()
	if len(specs) != 24 {
		t.Fatalf("specs = %d, want 24 (paper §V-A)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %s", s.Name)
		}
		seen[s.Name] = true
	}
	// Spot checks against the paper's notation.
	for _, want := range []string{"K8-G100-U", "K16-G95-S", "K32-G50-U", "K128-G50-S"} {
		if !seen[want] {
			t.Fatalf("missing workload %s", want)
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, ok := SpecByName("K32-G95-U")
	if !ok || s.KeySize != 32 || s.ValueSize != 256 || s.GetRatio != 0.95 || s.Skew != 0 {
		t.Fatalf("spec = %+v ok=%v", s, ok)
	}
	s, ok = SpecByName("k8-g50-s") // case-insensitive
	if !ok || s.Skew != ZipfYCSB {
		t.Fatalf("spec = %+v ok=%v", s, ok)
	}
	if _, ok := SpecByName("K9-G10-U"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestNewSpecValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSpec(4, 8, 0.5, 0) },
		func() { NewSpec(8, 8, 1.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeneratorMixMatchesSpec(t *testing.T) {
	spec, _ := SpecByName("K16-G95-U")
	g := NewGenerator(spec, 100000, 1)
	batch := g.Batch(20000)
	m := MeasureMix(batch)
	getFrac := float64(m.Gets) / float64(len(batch))
	if math.Abs(getFrac-0.95) > 0.01 {
		t.Fatalf("GET fraction = %.3f, want ~0.95", getFrac)
	}
	if m.AvgKeyLen != 16 {
		t.Fatalf("avg key len = %v", m.AvgKeyLen)
	}
	if m.AvgValueLen != 64 {
		t.Fatalf("avg value len = %v", m.AvgValueLen)
	}
}

func TestGeneratorKeysInPopulation(t *testing.T) {
	spec, _ := SpecByName("K8-G100-U")
	g := NewGenerator(spec, 1000, 2)
	for i := 0; i < 10000; i++ {
		q := g.Next(false)
		rank := binary.LittleEndian.Uint64(q.Key)
		if rank < 1 || rank > 1000 {
			t.Fatalf("rank %d out of population", rank)
		}
		if len(q.Key) != 8 {
			t.Fatalf("key len %d", len(q.Key))
		}
	}
}

func TestSkewedGeneratorConcentrates(t *testing.T) {
	spec, _ := SpecByName("K8-G100-S")
	g := NewGenerator(spec, 100000, 3)
	head := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		q := g.Next(false)
		if binary.LittleEndian.Uint64(q.Key) <= 1000 {
			head++
		}
	}
	frac := float64(head) / draws
	if frac < 0.5 {
		t.Fatalf("zipf(.99) head fraction = %.3f, want > 0.5", frac)
	}
}

func TestSetValuesAreFresh(t *testing.T) {
	spec, _ := SpecByName("K8-G50-U")
	g := NewGenerator(spec, 100, 4)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		q := g.Next(true)
		if q.Op != proto.OpSet {
			continue
		}
		seq := binary.LittleEndian.Uint64(q.Value)
		if seen[seq] {
			t.Fatalf("duplicate SET sequence %d", seq)
		}
		seen[seq] = true
	}
	if len(seen) == 0 {
		t.Fatal("no SETs generated at 50% GET")
	}
}

func TestKeyAtDeterministic(t *testing.T) {
	spec, _ := SpecByName("K128-G100-U")
	g := NewGenerator(spec, 100, 5)
	k1 := g.KeyAt(42, nil)
	k2 := g.KeyAt(42, nil)
	if string(k1) != string(k2) {
		t.Fatal("KeyAt not deterministic")
	}
	if len(k1) != 128 {
		t.Fatalf("key len = %d", len(k1))
	}
	k3 := g.KeyAt(43, nil)
	if string(k1) == string(k3) {
		t.Fatal("different ranks produced identical keys")
	}
}

func TestPopulationForMemory(t *testing.T) {
	spec, _ := SpecByName("K8-G100-U")
	small := PopulationForMemory(spec, 1<<20)
	big := PopulationForMemory(spec, 1<<30)
	if small >= big {
		t.Fatal("population should grow with memory")
	}
	if PopulationForMemory(spec, 1) != 1 {
		t.Fatal("population floor is 1")
	}
	// Bigger objects → smaller population for the same memory.
	specBig, _ := SpecByName("K128-G100-U")
	if PopulationForMemory(specBig, 1<<30) >= big {
		t.Fatal("larger objects must yield smaller population")
	}
}

func TestMeasureMixEmpty(t *testing.T) {
	m := MeasureMix(nil)
	if m.Gets != 0 || m.Sets != 0 || m.AvgKeyLen != 0 {
		t.Fatalf("empty mix = %+v", m)
	}
}

func TestAlternatorSwitchesPhases(t *testing.T) {
	sa, _ := SpecByName("K8-G50-U")
	sb, _ := SpecByName("K16-G95-S")
	a := NewGenerator(sa, 1000, 6)
	b := NewGenerator(sb, 1000, 7)
	alt := NewAlternator(a, b, 100)
	// First 100 queries: spec A.
	for i := 0; i < 100; i++ {
		q := alt.Next(false)
		if len(q.Key) != 8 {
			t.Fatalf("phase A query %d has key len %d", i, len(q.Key))
		}
		if alt.CurrentSpec().Name != sa.Name {
			t.Fatalf("phase A current spec = %s", alt.CurrentSpec().Name)
		}
	}
	// Next 100: spec B.
	for i := 0; i < 100; i++ {
		q := alt.Next(false)
		if len(q.Key) != 16 {
			t.Fatalf("phase B query %d has key len %d", i, len(q.Key))
		}
	}
	// And back to A.
	q := alt.Next(false)
	if len(q.Key) != 8 {
		t.Fatal("phase did not wrap back to A")
	}
}

func TestAlternatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAlternator(nil, nil, 0)
}

func TestGeneratorPanicsOnEmptyPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(NewSpec(8, 8, 1, 0), 0, 1)
}

func TestBatchSpansPhaseBoundary(t *testing.T) {
	sa, _ := SpecByName("K8-G100-U")
	sb, _ := SpecByName("K16-G100-U")
	alt := NewAlternator(NewGenerator(sa, 10, 1), NewGenerator(sb, 10, 2), 50)
	batch := alt.Batch(100)
	var k8, k16 int
	for _, q := range batch {
		switch len(q.Key) {
		case 8:
			k8++
		case 16:
			k16++
		}
	}
	if k8 != 50 || k16 != 50 {
		t.Fatalf("phase split = %d/%d, want 50/50", k8, k16)
	}
}

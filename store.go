package dido

import (
	"repro/internal/obs"
	"repro/internal/store"
)

// StoreConfig configures an embeddable Store.
type StoreConfig struct {
	// MemoryBytes is the key-value arena budget. When it fills, the least
	// recently used object of the needed size class is evicted, exactly as
	// in the paper's memory-management task.
	MemoryBytes int64
	// IndexEntries sizes the cuckoo index; defaults to MemoryBytes/256.
	IndexEntries int
	// Seed makes hashing deterministic (0 picks a fixed default).
	Seed uint64
	// Shards splits the store into independent index+arena pairs routed by
	// key hash (rounded up to a power of two, clamped to [1, 16]; 0 means 1).
	// More shards let concurrent writers proceed without contending on the
	// same slab-class locks; the memory budget is divided evenly, so very
	// small arenas should stay at 1.
	Shards int
	// HotKeys, when positive, enables the skew-aware hot-key fast path: a
	// cache-resident side table of that many slots (rounded up to a power of
	// two) serves sampled hot GETs before the cuckoo probe. Worth a few
	// hundred to a few thousand slots under Zipf-skewed read traffic; 0
	// (default) disables it with zero read-path overhead.
	HotKeys int
	// Ordered maintains an MVCC ordered index (a copy-on-write LLRB per
	// shard) beside the cuckoo table, enabling Scan. Writes pay one tree
	// upsert each; scans never block writers. False (default) keeps the
	// point-op-only store with zero overhead.
	Ordered bool
}

// Store is a concurrent in-memory key-value store: a cuckoo-hash index over
// a slab arena with per-class LRU eviction. All methods are safe for
// concurrent use. Values returned by Get are copies.
type Store struct {
	inner *store.Store
}

// NewStore returns a store with the given configuration. It panics if
// MemoryBytes is not positive.
func NewStore(cfg StoreConfig) *Store {
	return &Store{inner: store.New(store.Config{
		MemoryBytes:  cfg.MemoryBytes,
		IndexEntries: cfg.IndexEntries,
		Seed:         cfg.Seed,
		Shards:       cfg.Shards,
		HotKeys:      cfg.HotKeys,
		Ordered:      cfg.Ordered,
	})}
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	return s.inner.Get(key)
}

// GetInto appends the value stored under key to dst, returning the extended
// slice; on a miss dst is returned unchanged. With a reused dst of
// sufficient capacity the lookup performs no allocations — this is the
// server's GET hot path.
func (s *Store) GetInto(key, dst []byte) ([]byte, bool) {
	return s.inner.GetInto(key, dst)
}

// Set stores value under key, overwriting any prior value. Under memory
// pressure it evicts the least recently used object of the same size class.
// It returns an error when the object exceeds the largest slab class or the
// arena cannot hold it.
func (s *Store) Set(key, value []byte) error {
	_, _, err := s.inner.Set(key, value)
	return err
}

// Delete removes key, reporting whether an object was removed.
func (s *Store) Delete(key []byte) bool {
	return s.inner.Delete(key)
}

// Ordered reports whether the store was built with StoreConfig.Ordered and
// hence supports Scan.
func (s *Store) Ordered() bool { return s.inner.Ordered() }

// Scan iterates live objects with key in [start, end) in ascending key
// order, calling fn(key, value) until limit entries have been visited, the
// range is exhausted, or fn returns false. A nil/empty start means the
// smallest key; a nil/empty end means unbounded; limit <= 0 means unlimited.
// It returns the number of entries visited and whether the store is ordered
// (ok=false means the scan did not run — build the store with
// StoreConfig.Ordered). The key set iterated is a per-shard MVCC snapshot
// taken at the call; values are read live through the slab seqlock, so a
// scan never observes torn or reclaimed bytes (see internal/store/scan.go
// for the full contract). The slices passed to fn are reused; fn must copy
// what it keeps.
func (s *Store) Scan(start, end []byte, limit int, fn func(key, value []byte) bool) (int, bool) {
	return s.inner.Scan(start, end, limit, fn)
}

// Range iterates every live object, calling fn(key, value) until it returns
// false. Lock-free and safe alongside serving; the slices are reused across
// calls, so fn must copy what it keeps. The durability tier's snapshotter is
// the primary consumer.
func (s *Store) Range(fn func(key, value []byte) bool) {
	s.inner.Range(fn)
}

// StoreStats is a snapshot of store counters.
type StoreStats struct {
	Gets, Sets, Deletes uint64
	Hits, Misses        uint64
	Evictions           uint64
	HotHits             uint64 // GETs served by the hot-key fast path
	// Range-scan counters (all zero unless StoreConfig.Ordered).
	Scans           uint64 // SCAN operations executed
	ScanEntries     uint64 // entries returned across all scans
	ScanBytes       uint64 // key+value bytes returned across all scans
	ScanFallbacks   uint64 // snapshot locations gone stale, re-resolved via the index
	LiveObjects     int
	OrderedKeys     int // keys in the ordered index (tracks LiveObjects)
	IndexLoadFactor float64
}

// CollectMetrics appends the store's counters to w — the store's half of the
// admin endpoint's Collect callback (the server contributes the serving and
// pipeline metrics, see Server.CollectMetrics).
func (s *Store) CollectMetrics(w *obs.MetricsWriter) {
	st := s.Stats()
	w.Counter("dido_store_gets_total", "GET operations executed.", st.Gets)
	w.Counter("dido_store_sets_total", "SET operations executed.", st.Sets)
	w.Counter("dido_store_deletes_total", "DELETE operations executed.", st.Deletes)
	w.Counter("dido_store_hits_total", "GETs that found the key.", st.Hits)
	w.Counter("dido_store_misses_total", "GETs that missed.", st.Misses)
	w.Counter("dido_store_evictions_total", "Objects evicted to fit new SETs.", st.Evictions)
	w.Counter("dido_store_hot_hits_total", "GETs served by the hot-key fast path before the index probe.", st.HotHits)
	w.Counter("dido_scan_requests_total", "SCAN operations executed.", st.Scans)
	w.Counter("dido_scan_entries_total", "Entries returned across all SCANs.", st.ScanEntries)
	w.Counter("dido_scan_bytes_total", "Key+value bytes returned across all SCANs.", st.ScanBytes)
	w.Counter("dido_scan_fallbacks_total", "Scan snapshot locations re-resolved through the index after going stale.", st.ScanFallbacks)
	w.Gauge("dido_store_live_objects", "Objects currently stored.", float64(st.LiveObjects))
	w.Gauge("dido_store_ordered_keys", "Keys in the MVCC ordered index (0 when disabled).", float64(st.OrderedKeys))
	w.Gauge("dido_store_index_load_factor", "Cuckoo index occupancy in [0,1].", st.IndexLoadFactor)
}

// Stats returns current counters.
func (s *Store) Stats() StoreStats {
	st := s.inner.StatsSnapshot()
	return StoreStats{
		Gets:            st.Gets,
		Sets:            st.Sets,
		Deletes:         st.Deletes,
		Hits:            st.Hits,
		Misses:          st.Misses,
		Evictions:       st.Evictions,
		HotHits:         st.HotHits,
		Scans:           st.Scans,
		ScanEntries:     st.ScanEntries,
		ScanBytes:       st.ScanBytes,
		ScanFallbacks:   st.ScanFallbacks,
		LiveObjects:     st.LiveObjects,
		OrderedKeys:     st.OrderedKeys,
		IndexLoadFactor: st.IndexLoadFactor,
	}
}

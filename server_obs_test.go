package dido

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// httpGet fetches one admin endpoint and returns status + body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminUnderChaos is the observability end-to-end: a pipelined adaptive
// server with the fault injector active and the full admin surface attached.
// While lossy traffic runs, /metrics, /config and /trace must respond;
// counters must be monotonic between scrapes; and after the dust settles the
// trace ring must have recorded exactly one decision per completed batch,
// including at least one replan with a sane installed config.
func TestAdminUnderChaos(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	ring := obs.NewTraceRing(0)
	slow := obs.NewSlowLog(0, 64, 1) // threshold 0: record every frame
	srv := NewServerOpts(st, ServerOptions{
		Pipeline: &PipelineOptions{
			BatchInterval: 200 * time.Microsecond,
			Adapt:         true,
			Trace:         ring,
		},
		SlowLog: slow,
		WrapConn: func(pc net.PacketConn) net.PacketConn {
			return faults.Wrap(pc, faults.Symmetric(42, faults.Profile{
				Drop: 0.05, Dup: 0.05, Reorder: 0.05, Corrupt: 0.05,
			}))
		},
	})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	admin := obs.NewAdmin(obs.AdminOptions{
		Collect: func(w *obs.MetricsWriter) {
			srv.CollectMetrics(w)
			st.CollectMetrics(w)
		},
		Config:  func() any { return srv.ConfigView() },
		Trace:   ring,
		SlowLog: slow,
	})
	if err := admin.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr().String()

	// Chaos traffic: several clients retrying through the lossy socket.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := DialOpts(addr, ClientOptions{Timeout: 250 * time.Millisecond, Seed: int64(g + 1)})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 60; i++ {
				key := []byte(fmt.Sprintf("c%d-%d", g, i%16))
				if i%3 == 0 {
					c.Set(key, []byte("chaos-value")) //nolint:errcheck // drops expected
				} else {
					c.Get(key) //nolint:errcheck
				}
			}
		}(g)
	}

	// First scrape mid-chaos.
	code, body1 := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d mid-chaos", code)
	}
	m1 := parseExposition(t, body1)

	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d mid-chaos", code)
	}
	if code, _ := httpGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof status %d mid-chaos", code)
	}
	code, cfgBody := httpGet(t, base+"/config")
	if code != http.StatusOK {
		t.Fatalf("/config status %d mid-chaos", code)
	}
	var cfg ServerConfigView
	if err := json.Unmarshal([]byte(cfgBody), &cfg); err != nil {
		t.Fatalf("/config not JSON: %v\n%s", err, cfgBody)
	}
	if cfg.Path != "pipelined" || cfg.Pipeline == nil || !cfg.Pipeline.Adapt {
		t.Fatalf("/config = %+v, want pipelined+adapt", cfg)
	}
	if code, _ := httpGet(t, base+"/trace"); code != http.StatusOK {
		t.Fatalf("/trace status %d mid-chaos", code)
	}
	if code, _ := httpGet(t, base+"/slowlog"); code != http.StatusOK {
		t.Fatalf("/slowlog status %d mid-chaos", code)
	}

	wg.Wait()

	// Second scrape: every *_total must be monotonic w.r.t. the first.
	code, body2 := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d after chaos", code)
	}
	m2 := parseExposition(t, body2)
	checked := 0
	for name, v1 := range m1 {
		if !strings.Contains(name, "_total") {
			continue
		}
		v2, ok := m2[name]
		if !ok {
			t.Errorf("counter %s vanished between scrapes", name)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %v → %v", name, v1, v2)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d *_total counters scraped — exposition looks truncated:\n%s", checked, body1)
	}
	if m2["dido_served_queries_total"] == 0 {
		t.Fatal("no queries served through the chaos")
	}

	// Drain, then audit the decision trace against the batch count.
	srv.Close()
	waitServe(t, errc)
	ps, ok := srv.PipelineStats()
	if !ok || ps.Batches == 0 {
		t.Fatalf("pipeline stats = %+v, %v", ps, ok)
	}
	if got := ring.Total(); got != ps.Batches {
		t.Fatalf("trace recorded %d decisions for %d batches — the ring must capture every controller decision", got, ps.Batches)
	}
	events := ring.Snapshot()
	replans := 0
	for _, e := range events {
		if e.Replan {
			replans++
		}
		if e.NewTarget < 1 {
			t.Fatalf("decision installed batch target %d: %+v", e.NewTarget, e)
		}
		if e.New.GPUDepth < 0 || e.New.GPUDepth > pipeline.MaxGPUDepth {
			t.Fatalf("decision installed GPUDepth %d: %+v", e.New.GPUDepth, e)
		}
		if e.When.IsZero() {
			t.Fatalf("untimestamped decision: %+v", e)
		}
	}
	if replans == 0 {
		t.Fatal("no replan recorded — the first measured batch must replan")
	}

	// The slow-query log saw traffic (threshold 0 records everything).
	if slow.Seen() == 0 || slow.Recorded() == 0 {
		t.Fatalf("slow log empty: seen=%d recorded=%d", slow.Seen(), slow.Recorded())
	}
	if entries := slow.Snapshot(); len(entries) == 0 {
		t.Fatal("slow log ring empty")
	}

	// /trace after the fact decodes and carries the notation fields.
	_, traceBody := httpGet(t, base+"/trace")
	var tv struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Old string `json:"old"`
			New string `json:"new"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(traceBody), &tv); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if tv.Total != ps.Batches || len(tv.Events) == 0 {
		t.Fatalf("/trace total=%d events=%d, want total=%d", tv.Total, len(tv.Events), ps.Batches)
	}
	for _, e := range tv.Events {
		if e.New == "" {
			t.Fatal("/trace event missing config notation")
		}
	}
}

// TestSlowLogOnServingPaths pins that both serving paths feed the slow-query
// log: with a zero threshold every completed frame must be observed.
func TestSlowLogOnServingPaths(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
			slow := obs.NewSlowLog(0, 16, 1)
			opts := ServerOptions{SlowLog: slow}
			if pipelined {
				opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
			}
			srv := NewServerOpts(st, opts)
			addr, errc := startServer(t, srv)
			defer srv.Close()

			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			const frames = 20
			for i := 0; i < frames; i++ {
				if err := c.Set([]byte(fmt.Sprintf("sl%d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			srv.Close()
			waitServe(t, errc)

			if got := slow.Seen(); got != frames {
				t.Fatalf("slow log saw %d frames, want %d", got, frames)
			}
			e := slow.Snapshot()[0]
			if e.Latency <= 0 || e.Queries != 1 || e.Op != uint8(OpSet) {
				t.Fatalf("entry = %+v", e)
			}
			if !strings.HasPrefix(string(e.Key()), "sl") {
				t.Fatalf("key = %q", e.Key())
			}
		})
	}
}

// TestSlowLogThresholdFilters: with an unreachable threshold nothing is
// recorded — the fast path really is taken.
func TestSlowLogThresholdFilters(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	slow := obs.NewSlowLog(time.Hour, 16, 1)
	srv := NewServerOpts(st, ServerOptions{SlowLog: slow})
	addr, errc := startServer(t, srv)
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		if err := c.Set([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	waitServe(t, errc)
	if slow.Seen() != 0 || slow.Recorded() != 0 {
		t.Fatalf("sub-threshold frames recorded: seen=%d recorded=%d", slow.Seen(), slow.Recorded())
	}
}

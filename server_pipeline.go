package dido

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/apu"
	"repro/internal/costmodel"
	"repro/internal/cuckoo"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/store"
)

// This file routes admitted frames — from any frontend — through the
// task-granular live pipeline (internal/pipeline.LiveRunner) instead of one
// goroutine per frame: the frontend readers perform RV/PP (parse) and the
// core submits, stage worker groups execute IN/KC+RD/WR batched under each
// batch's sealed config, and the SD callback encodes and delivers responses
// through each frame's Responder and releases the frame's admission token.
// Dedupe, shedding and at-most-once semantics are exactly the per-frame
// path's: a frame passes the same reply-cache begin / token gate before it
// ever reaches the pipeline, and its in-flight marker is cleared only when
// its responses were sent (or it was poisoned and the client must retry).

// PipelineOptions configures the server's batched pipeline serving path.
//
// Ordering contract: within one batch the pipeline executes all index writes
// before all reads (the paper's staged semantics), so a GET observes any SET
// or DELETE batched with it — including ones later in the same frame. The
// per-frame path executes a frame's queries in program order instead.
// Clients that need read-then-write ordering for the same key put the
// operations in separate requests.
type PipelineOptions struct {
	// BatchInterval bounds how long a partial batch waits before execution.
	// Default pipeline.DefaultLiveBatchInterval.
	BatchInterval time.Duration
	// MaxBatch caps the batch size in queries (even when adaptation would
	// prefer more, latency stays bounded). Default pipeline.DefaultLiveMaxBatch.
	MaxBatch int
	// Workers sets goroutines per pipeline stage group; entries ≤ 0 mean 1.
	Workers [3]int
	// Adapt turns on online reconfiguration: per-batch measured profiles feed
	// the workload profiler and cost model, and a new (config, batch size)
	// pair is installed at batch boundaries when the workload shifts >10%.
	// Requires the backend to be a *Store (the profiler reads its access
	// counters); otherwise the static default config is used.
	Adapt bool
	// WideMinGets is the per-batch GET count at which the IN and KC+RD stages
	// switch from scalar per-key loops to the store's wide, shard-grouped
	// batched path. 0 means pipeline.DefaultWideMinGets; negative disables
	// the wide path. Only effective when the backend is a *Store.
	WideMinGets int
	// Steal enables chunk-granular work stealing across the pipeline's stage
	// groups: stage phases of batches sealed with a WorkStealing config are
	// split into fixed-size chunks behind an atomic claim index, and idle
	// workers from other groups pull chunks from the bottleneck stage
	// (paper §III-B3). With Adapt the controller decides per batch whether
	// stealing's predicted Eq 3 benefit clears the gate; without Adapt the
	// static default config keeps WorkStealing off, so the flag only takes
	// effect combined with a Provider that turns it on.
	Steal bool
	// Provider overrides the config provider entirely (tests); when set,
	// Adapt is ignored.
	Provider pipeline.ConfigProvider
	// Trace, when non-nil with Adapt, receives one event per controller
	// decision (every batch boundary) for the admin /trace endpoint. Ignored
	// without Adapt — the static provider makes no decisions worth auditing.
	Trace *obs.TraceRing
}

// serverPipeline is the server's handle on the live runner.
type serverPipeline struct {
	runner *pipeline.LiveRunner
	ctrl   *costmodel.Controller // non-nil only when adapting
	slots  sync.Pool             // *liveSlot
	// measureParse mirrors runner.WantsProfile(): whether frontends should
	// time RV/PP per frame (the cost feeds only the measured profile).
	measureParse bool
}

// liveSlot binds one frontend frame to its pipeline LiveFrame while it
// travels the staged executor, plus the durability flags the LG task and the
// SD callback coordinate through.
type liveSlot struct {
	lf pipeline.LiveFrame
	f  *frontend.Frame
	// walRecords marks a frame that contributed records to the batch's WAL
	// commit; walFailed marks one whose commit failed — its ack is dropped so
	// the client retries (acked implies durable).
	walRecords, walFailed bool
}

func (sl *liveSlot) reset() {
	sl.lf = pipeline.LiveFrame{}
	sl.f = nil
	sl.walRecords, sl.walFailed = false, false
}

// initPipeline wires the live runner into s; called from NewServerOpts when
// opts.Pipeline is set. The runner's workers start here — a pipelined server
// must be Closed even if Serve is never called.
func (s *Server) initPipeline(po *PipelineOptions) {
	interval := po.BatchInterval
	if interval <= 0 {
		interval = pipeline.DefaultLiveBatchInterval
	}
	maxBatch := po.MaxBatch
	if maxBatch <= 0 {
		maxBatch = pipeline.DefaultLiveMaxBatch
	}
	ls, inner := newLiveStore(s.store)
	pipe := &serverPipeline{}
	provider := po.Provider
	if provider == nil {
		if po.Adapt && inner != nil {
			pl := costmodel.NewPlanner(apu.KaveriPlatform(), interval)
			pl.MinBatch = pipeline.DefaultLiveMinBatch
			pl.MaxBatch = maxBatch
			if po.WideMinGets >= 0 {
				// The wide batched executor serves IN(Search); let the planner
				// price its memory-level parallelism so it prefers wide IN
				// stages at large batch sizes.
				pl.INSearchMLP = costmodel.DefaultINSearchMLP
			}
			if s.netQueues > 1 {
				// Reader parallelism is a socket-open-time decision (a parked
				// REUSEPORT socket would strand its kernel-hashed flows), so
				// size it once here, like any other task placement, against
				// the real host's schedulable cores; every later replan then
				// prices RV/PP at the effective reader count.
				s.netQueues = pl.SizeReaders(costmodel.DefaultIngestProfile(),
					runtime.GOMAXPROCS(0), s.netQueues)
			}
			// ≥ 1 always: the live frontends run RV/PP on their reader
			// goroutines, not on the stage worker group the simulator models.
			pl.RVReaders = s.netQueues
			sizer := &pipeline.BatchSizer{Interval: interval, Min: pl.MinBatch, Max: maxBatch}
			sizer.Set(pipeline.DefaultInitialBatch)
			pipe.ctrl = costmodel.NewController(pl, profiler.New(inner), pipeline.DefaultLiveConfig(), sizer)
			pipe.ctrl.AllowStealing = po.Steal
			pipe.ctrl.Trace = po.Trace
			provider = pipe.ctrl
		} else {
			provider = &pipeline.StaticProvider{
				Config:   pipeline.DefaultLiveConfig(),
				Interval: interval,
				MinBatch: pipeline.DefaultLiveMinBatch,
				MaxBatch: maxBatch,
			}
		}
	}
	pipe.slots.New = func() any { return &liveSlot{} }
	lopts := pipeline.LiveOptions{
		Provider:      provider,
		BatchInterval: interval,
		Workers:       po.Workers,
		WideMinGets:   po.WideMinGets,
		Steal:         po.Steal,
		DoneBatch:     s.pipelineBatchDone,
	}
	if s.dur != nil {
		// Durable server: the LG task group-commits each batch's WAL records
		// between WR and SD, and its measured cost feeds the adaptation
		// profile's LG term.
		lopts.LogBatch = s.pipelineLogBatch
	}
	pipe.runner = pipeline.NewLiveRunner(ls, lopts)
	pipe.measureParse = pipe.runner.WantsProfile()
	s.pipe = pipe
}

// submitPipelined hands an admitted, parsed frame to the pipeline. The
// frontend already ran RV/PP; the caller has passed the dedupe gate and
// acquired a token and a wg slot, and every exit path here or in
// pipelineBatchDone releases all three.
func (s *Server) submitPipelined(f *frontend.Frame) {
	sl := s.pipe.slots.Get().(*liveSlot)
	sl.f = f
	sl.lf = pipeline.LiveFrame{
		Queries:    f.Queries,
		ParseNanos: f.ParseNanos,
		Ctx:        sl,
	}
	if !s.pipe.runner.Submit(&sl.lf) {
		// Pipeline saturated (or closing): shed like the token path does, so
		// the client backs off instead of timing out.
		s.shed.Inc()
		if f.Tracked {
			s.replies.abort(f.AKey, f.ReqID)
			f.Tracked = false
		}
		f.R.Busy(f)
		sl.reset()
		s.pipe.slots.Put(sl)
		<-s.tokens
		s.wg.Done()
		f.R.Release(f)
	}
}

// pipelineBatchDone is the SD task for one completed batch: it encodes every
// healthy frame's responses, delivers the batch through each responder's
// batched path (sendmmsg for UDP, one coalesced write per connection for
// RESP), fills the reply cache, and releases each frame's token and wg slot.
// A poisoned frame (lf.Err) or one whose WAL commit failed gets Fail instead
// of an ack: the datagram client's retry is re-admitted, the stream client
// sees in-band errors (its reply ordering must not skip a frame).
//
// Reply caching here does not depend on send success: the batched sender is
// best-effort (UDP gives no per-datagram delivery signal), so a computed
// reply is always cached and a retry whose response was dropped is answered
// by replay instead of re-execution — the same at-most-once outcome as the
// per-frame path.
func (s *Server) pipelineBatchDone(lfs []*pipeline.LiveFrame) {
	var (
		fs    []*frontend.Frame
		first frontend.Responder
		mixed bool
	)
	for _, lf := range lfs {
		sl := lf.Ctx.(*liveSlot)
		f := sl.f
		if lf.Err {
			s.panics.Inc()
			f.R.Fail(f, "internal error")
			continue
		}
		if sl.walFailed {
			// The batch's WAL commit failed: this frame's writes are applied
			// in memory but not durable, so it gets no successful ack — the
			// client's retry re-executes (idempotent) or is answered once a
			// later commit lands its records.
			f.R.Fail(f, "wal commit failed")
			continue
		}
		s.served.Add(uint64(len(lf.Queries)))
		if f.Units == nil { // already encoded by the LG task on durable servers
			f.Units = f.R.Encode(f, lf.Resps)
		}
		fs = append(fs, f)
		if first == nil {
			first = f.R
		} else if first != f.R {
			mixed = true
		}
	}
	if len(fs) > 0 {
		if !mixed {
			first.DeliverBatch(fs)
		} else {
			// Several frontends contributed to this batch: partition by
			// responder, preserving per-responder frame order.
			rem := fs
			for len(rem) > 0 {
				r0 := rem[0].R
				group := make([]*frontend.Frame, 0, len(rem))
				rest := rem[:0]
				for _, f := range rem {
					if f.R == r0 {
						group = append(group, f)
					} else {
						rest = append(rest, f)
					}
				}
				r0.DeliverBatch(group)
				rem = rest
			}
		}
	}
	slog := s.opts.SlowLog
	for _, lf := range lfs {
		sl := lf.Ctx.(*liveSlot)
		f := sl.f
		bad := lf.Err || sl.walFailed
		if slog != nil && !bad && len(f.Queries) > 0 {
			slog.Observe(time.Since(f.Start), len(f.Queries), uint8(f.Queries[0].Op), f.Queries[0].Key)
		}
		if f.Tracked {
			if bad {
				// Clear the in-flight marker so the retry is re-admitted.
				s.replies.abort(f.AKey, f.ReqID)
			} else {
				s.replies.finish(f.AKey, f.ReqID, f.Units)
			}
			f.Tracked = false
		}
		<-s.tokens
		sl.reset()
		s.pipe.slots.Put(sl)
		f.R.Release(f)
		s.wg.Done()
	}
}

// newLiveStore adapts the server's Backend to the pipeline's task-granular
// store surface. A real *Store exposes its index search and fused KC+RD
// directly (and its metrics for the adaptation profile); any other backend —
// test fakes, the fault injector — is wrapped so every query still flows
// through it, with Search degenerating to a no-op and ReadCandidates to a
// plain lookup.
func newLiveStore(b Backend) (pipeline.LiveStore, *store.Store) {
	if st, ok := b.(*Store); ok {
		return storeLive{st.inner}, st.inner
	}
	gi, _ := b.(GetIntoBackend)
	sb, _ := b.(ScanBackend)
	return backendLive{b: b, gi: gi, sb: sb}, nil
}

type storeLive struct{ s *store.Store }

func (l storeLive) Search(key []byte, dst []cuckoo.Location) []cuckoo.Location {
	// SearchServe, not IndexSearch: the GET serving path lets keys cached by
	// the hot-key side table skip the index probe (ReadCandidates serves
	// them, or falls back authoritatively if the entry is invalidated).
	return l.s.SearchServe(key, dst)
}

func (l storeLive) ReadCandidates(key []byte, cands []cuckoo.Location, dst []byte) ([]byte, bool) {
	return l.s.ReadCandidates(key, cands, dst)
}

func (l storeLive) Set(key, value []byte) error {
	_, _, err := l.s.Set(key, value)
	return err
}

func (l storeLive) Delete(key []byte) bool { return l.s.Delete(key) }

// NewScanner satisfies pipeline.RangeScanner: one MVCC snapshot set per
// batch, so every SCAN in the batch merges the same key-set version. The
// typed-nil guard matters — a store without the ordered index returns a nil
// *store.Scanner, which must surface as a nil interface so the runner
// answers StatusError instead of calling through it.
func (l storeLive) NewScanner() pipeline.LiveScanner {
	if sc := l.s.NewScanner(); sc != nil {
		return sc
	}
	return nil
}

// The wide batched path (pipeline.BatchReadStore) delegates straight to the
// store's shard-grouped executors.

func (l storeLive) SearchBatch(keys [][]byte, dst []cuckoo.Location, lo, hi []int32) []cuckoo.Location {
	return l.s.SearchBatch(keys, dst, lo, hi)
}

func (l storeLive) ReadCandidatesBatch(keys [][]byte, cands []cuckoo.Location, lo, hi []int32, vals []byte, vlo, vhi []int32) ([]byte, int) {
	return l.s.ReadCandidatesBatch(keys, cands, lo, hi, vals, vlo, vhi)
}

func (l storeLive) GetBatch(keys [][]byte, vals []byte, vlo, vhi []int32) ([]byte, int) {
	return l.s.GetBatch(keys, vals, vlo, vhi)
}

func (l storeLive) LiveMetrics() (liveObjects, evictions uint64, avgInsertBuckets float64) {
	st := l.s.StatsSnapshot()
	return uint64(st.LiveObjects), st.Evictions, st.AvgInsertBucketsProbed
}

// HotStats satisfies pipeline.HotKeyStats so the measured hot-hit portion
// reaches the adaptation profile.
func (l storeLive) HotStats() (hits uint64, enabled bool) { return l.s.HotStats() }

type backendLive struct {
	b  Backend
	gi GetIntoBackend
	sb ScanBackend
}

func (l backendLive) Search(_ []byte, dst []cuckoo.Location) []cuckoo.Location { return dst }

func (l backendLive) ReadCandidates(key []byte, _ []cuckoo.Location, dst []byte) ([]byte, bool) {
	if l.gi != nil {
		return l.gi.GetInto(key, dst)
	}
	v, ok := l.b.Get(key)
	if !ok {
		return dst, false
	}
	return append(dst, v...), true
}

func (l backendLive) Set(key, value []byte) error { return l.b.Set(key, value) }

func (l backendLive) Delete(key []byte) bool { return l.b.Delete(key) }

// backendScanner adapts a ScanBackend to the pipeline's per-batch scanner.
// Each Scan takes its own snapshot (the wrapped backend decides), which is
// weaker than storeLive's batch-wide snapshot but preserves the per-scan
// contract for wrapped backends.
type backendScanner struct{ sb ScanBackend }

func (a backendScanner) Scan(start, end []byte, limit int, fn func(key, value []byte) bool) int {
	n, _ := a.sb.Scan(start, end, limit, fn)
	return n
}

func (l backendLive) NewScanner() pipeline.LiveScanner {
	if l.sb == nil {
		return nil
	}
	return backendScanner{sb: l.sb}
}

// LivePipelineStats re-exports the live runner's counter snapshot.
type LivePipelineStats = pipeline.LiveStats

// PipelineStats returns the live pipeline's counters; ok is false when the
// server runs the per-frame path.
func (s *Server) PipelineStats() (LivePipelineStats, bool) {
	if s.pipe == nil {
		return LivePipelineStats{}, false
	}
	return s.pipe.runner.Stats(), true
}

// PipelineStageQuantiles returns, per pipeline stage, the given quantiles of
// per-batch stage wall time in microseconds.
func (s *Server) PipelineStageQuantiles(qs ...float64) ([3][]float64, bool) {
	if s.pipe == nil {
		return [3][]float64{}, false
	}
	return s.pipe.runner.StageQuantiles(qs...), true
}

// PipelineReplans returns how many times online adaptation installed a
// re-planned config; ok is false unless the server is pipelined with Adapt.
func (s *Server) PipelineReplans() (uint64, bool) {
	if s.pipe == nil || s.pipe.ctrl == nil {
		return 0, false
	}
	return s.pipe.ctrl.Replans(), true
}

package dido

import (
	"fmt"
	"time"

	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/wal"
)

// This file renders the server's observability surfaces for the admin
// endpoint (internal/obs): the Prometheus exposition, the live-config JSON
// view, and the human-readable stats line. The dump line and /metrics render
// from the same ServerStats snapshot type so the two surfaces can never
// disagree about what a counter means.

// String renders the stats line the server command prints periodically. It
// and writeServerMetrics consume the same snapshot — tests pin that both
// report identical values from one Stats() call.
func (ss ServerStats) String() string {
	return fmt.Sprintf("served=%d frames=%d shed=%d replayed=%d dup-dropped=%d malformed=%d panics=%d conns-shed=%d inflight=%d",
		ss.Served, ss.Frames, ss.Shed, ss.Replayed, ss.DupDropped, ss.Malformed, ss.Panics, ss.ConnsShed, ss.InFlight)
}

// writeServerMetrics emits one ServerStats snapshot in exposition format.
// Split from CollectMetrics so tests can render a pinned snapshot.
func writeServerMetrics(w *obs.MetricsWriter, ss ServerStats) {
	w.Counter("dido_served_queries_total", "Queries executed.", ss.Served)
	w.Counter("dido_frames_total", "Frames executed.", ss.Frames)
	w.Counter("dido_shed_frames_total", "Frames rejected with StatusBusy under overload.", ss.Shed)
	w.Counter("dido_replayed_frames_total", "Retried frames answered from the reply cache.", ss.Replayed)
	w.Counter("dido_dup_dropped_frames_total", "Duplicate frames dropped while the original executed.", ss.DupDropped)
	w.Counter("dido_malformed_frames_total", "Undecodable or corrupted frames dropped.", ss.Malformed)
	w.Counter("dido_panics_total", "Frames whose processing panicked (contained).", ss.Panics)
	w.Counter("dido_shed_conns_total", "Stream connections rejected over the MaxConns budget.", ss.ConnsShed)
	w.Gauge("dido_inflight_frames", "Frames currently being processed.", float64(ss.InFlight))
}

// collectFrontendMetrics emits the per-frontend breakdown (udp / resp / text),
// one labelled series per counter, from each registered StatsSource.
func (s *Server) collectFrontendMetrics(w *obs.MetricsWriter) {
	s.mu.Lock()
	srcs := make([]frontend.StatsSource, len(s.statsSrcs))
	copy(srcs, s.statsSrcs)
	s.mu.Unlock()
	for _, src := range srcs {
		fs := src.FrontendStats()
		labels := fmt.Sprintf("frontend=%q", src.Name())
		w.CounterL("dido_frontend_frames_total", "Frames decoded and handed to the core, per frontend.", labels, fs.Frames)
		w.CounterL("dido_frontend_malformed_total", "Undecodable inputs dropped at the frontend.", labels, fs.Malformed)
		w.CounterL("dido_frontend_bytes_in_total", "Transport bytes received.", labels, fs.BytesIn)
		w.CounterL("dido_frontend_bytes_out_total", "Transport bytes sent.", labels, fs.BytesOut)
		w.CounterL("dido_frontend_conns_accepted_total", "Stream connections accepted (0 for datagram frontends).", labels, fs.ConnsAccepted)
		w.CounterL("dido_frontend_conns_shed_total", "Stream connections shed at accept.", labels, fs.ConnsShed)
		w.GaugeL("dido_frontend_conns_active", "Stream connections currently open.", labels, float64(fs.ConnsActive))
		w.CounterL("dido_frontend_send_errors_total", "Reply writes that failed (frames dropped or connections torn down).", labels, fs.SendErrs)
		if qs, ok := src.(frontend.QueueStatsSource); ok {
			queues := qs.QueueStats()
			w.GaugeL("dido_frontend_queues", "Ingestion queues this frontend shards across.", labels, float64(len(queues)))
			if len(queues) > 1 {
				for qi, q := range queues {
					ql := fmt.Sprintf("frontend=%q,queue=\"%d\"", src.Name(), qi)
					w.CounterL("dido_frontend_queue_frames_total", "Frames decoded on this ingestion queue.", ql, q.Frames)
					w.CounterL("dido_frontend_queue_bytes_in_total", "Transport bytes received on this queue.", ql, q.BytesIn)
					w.CounterL("dido_frontend_queue_bytes_out_total", "Transport bytes sent on this queue.", ql, q.BytesOut)
					w.CounterL("dido_frontend_queue_send_errors_total", "Failed reply writes on this queue.", ql, q.SendErrs)
					w.CounterL("dido_frontend_queue_conns_total", "Connections accepted on this queue (stream frontends).", ql, q.Conns)
				}
			}
		}
	}
}

// CollectMetrics appends the server's serving and pipeline metrics to w; it
// is the server's half of the admin endpoint's Collect callback.
func (s *Server) CollectMetrics(w *obs.MetricsWriter) {
	writeServerMetrics(w, s.Stats())
	s.collectFrontendMetrics(w)
	if s.dur != nil {
		s.collectDurabilityMetrics(w)
	}
	if s.pipe == nil {
		return
	}
	ps := s.pipe.runner.Stats()
	w.Counter("dido_pipeline_batches_total", "Batches completed by the live pipeline.", ps.Batches)
	w.Counter("dido_pipeline_queries_total", "Queries served through the pipeline.", ps.Queries)
	w.Counter("dido_pipeline_wide_batches_total", "KC+RD stage passes served by the wide batched path.", ps.WideBatches)
	w.Counter("dido_pipeline_reconfigs_total", "Batch boundaries that installed a different config.", ps.Reconfigs)
	w.Counter("dido_pipeline_submit_shed_total", "Frames rejected because every stage-1 slot was full.", ps.SubmitShed)
	w.Counter("dido_pipeline_panics_total", "Frames poisoned inside a pipeline stage.", ps.Panics)
	w.Counter("dido_pipeline_steal_batches_total", "Batches that ran at least one stage phase chunked for stealing.", ps.StealBatches)
	w.Counter("dido_pipeline_stolen_chunks_total", "Work chunks executed by a worker outside the owning stage group.", ps.StolenChunks)
	w.Counter("dido_pipeline_stolen_queries_total", "Query slots covered by stolen chunks.", ps.StolenQueries)
	w.Gauge("dido_pipeline_batch_target", "Currently installed batch-size target in queries.", float64(ps.Target))
	if s.pipe.ctrl != nil {
		w.Counter("dido_pipeline_replans_total", "Times online adaptation installed a re-planned config.", s.pipe.ctrl.Replans())
	}
	// Per-stage wall-time distribution as a summary: each stage's quantiles,
	// sum and count come from one consistent histogram snapshot.
	for si := 0; si < 3; si++ {
		w.Summary("dido_pipeline_stage_micros",
			"Per-batch stage wall time in microseconds.",
			fmt.Sprintf("stage=%q", fmt.Sprint(si+1)),
			s.pipe.runner.StageHistogram(pipeline.Stage(si)).Export(),
			0.5, 0.99, 0.999)
	}
}

// collectDurabilityMetrics emits the durability tier's metrics; called only
// when the tier is attached, so a non-durable server's exposition is
// unchanged (its name set is pinned separately by tests).
func (s *Server) collectDurabilityMetrics(w *obs.MetricsWriter) {
	ds, _ := s.DurabilityStats()
	w.Counter("dido_wal_records_total", "WAL records committed.", ds.WAL.Records)
	w.Counter("dido_wal_bytes_total", "Framed WAL bytes committed.", ds.WAL.Bytes)
	w.Counter("dido_wal_syncs_total", "WAL fsyncs issued (group commit shares them).", ds.WAL.Syncs)
	w.Counter("dido_wal_errors_total", "WAL write + fsync failures.", ds.WAL.WriteErrs+ds.WAL.SyncErrs)
	w.Counter("dido_wal_rotations_total", "WAL segment rotations (one per snapshot).", ds.WAL.Rotations)
	w.Counter("dido_wal_dropped_acks_total", "Frames whose ack was dropped because their WAL commit failed.", ds.DroppedAcks)
	w.Summary("dido_wal_fsync_micros", "WAL fsync latency in microseconds.", "",
		s.dur.log.FsyncHistogram().Export(), 0.5, 0.99, 0.999)
	w.Counter("dido_snapshots_total", "Completed snapshot/truncate cycles.", ds.Snapshots.Snapshots)
	w.Counter("dido_snapshot_errors_total", "Failed snapshot attempts (retried next tick).", ds.Snapshots.Errors)
	w.Gauge("dido_snapshot_last_unix", "Completion time of the newest snapshot (0 = none).", float64(ds.Snapshots.LastUnix))
	w.Gauge("dido_snapshot_last_entries", "Entries in the newest snapshot.", float64(ds.Snapshots.LastEntries))
	w.Gauge("dido_recovery_duration_seconds", "Startup recovery time (snapshot load + WAL replay).", ds.RecoveryDuration.Seconds())
	w.Gauge("dido_recovery_wal_records", "WAL records replayed by startup recovery.", float64(ds.RecoveredWALRecords))
	w.Gauge("dido_recovery_dropped_applies", "Recovered SETs the backend rejected at startup (non-zero = durable keys missing).", float64(ds.RecoveryDroppedApplies))
}

// ServerConfigView is the admin /config payload: the serving configuration as
// it stands now, including the pipeline config adaptation may have installed
// since startup.
type ServerConfigView struct {
	// Path is "per-frame" or "pipelined".
	Path           string `json:"path"`
	MaxInFlight    int    `json:"max_inflight"`
	ReplyCacheSize int    `json:"reply_cache_size"`
	// NetQueues is the effective ingestion queue count the frontends shard
	// across; NetQueuesRequested appears only when the platform or the cost
	// model gated the count below what was configured.
	NetQueues          int `json:"net_queues"`
	NetQueuesRequested int `json:"net_queues_requested,omitempty"`
	// SlowQueryThresholdMicros is present when a slow-query log is attached.
	SlowQueryThresholdMicros float64 `json:"slow_query_threshold_micros,omitempty"`
	// Pipeline is present on the pipelined path.
	Pipeline *PipelineConfigView `json:"pipeline,omitempty"`
	// Durability is present when the durability tier is attached.
	Durability *DurabilityConfigView `json:"durability,omitempty"`
}

// DurabilityConfigView describes the durability tier's configuration.
type DurabilityConfigView struct {
	Dir string `json:"dir"`
	// Sync is the WAL sync policy: "batch", "interval" or "off".
	Sync string `json:"sync"`
	// SyncIntervalMicros is present under the interval policy.
	SyncIntervalMicros float64 `json:"sync_interval_micros,omitempty"`
	// SnapshotIntervalSeconds is 0 when periodic snapshots are off.
	SnapshotIntervalSeconds float64 `json:"snapshot_interval_seconds"`
	// Snapshots reports whether the backend supports snapshotting (Range).
	Snapshots bool `json:"snapshots"`
}

// PipelineConfigView describes the live pipeline's current plan.
type PipelineConfigView struct {
	// Config is the paper's pipeline notation (e.g. "CPU[IN.S]+GPU[KC,RD]+CPU[WR]").
	Config string `json:"config"`
	// GPUDepth / CPUCoresPre / InsertOn / DeleteOn break the config out.
	GPUDepth    int    `json:"gpu_depth"`
	CPUCoresPre int    `json:"cpu_cores_pre"`
	InsertOn    string `json:"insert_on"`
	DeleteOn    string `json:"delete_on"`
	// BatchTarget is the installed batch-size target in queries.
	BatchTarget int `json:"batch_target"`
	// WorkStealing reports whether the currently installed config runs its
	// stealable stage phases chunked (the -steal gate, decided per plan).
	WorkStealing bool `json:"work_stealing"`
	// Adapt reports whether online reconfiguration is driving the plan;
	// Replans how many times it installed a new one.
	Adapt   bool   `json:"adapt"`
	Replans uint64 `json:"replans"`
}

// ConfigView returns the live serving configuration for the admin /config
// endpoint. Each call re-reads the pipeline's installed config, so the view
// follows online reconfiguration.
func (s *Server) ConfigView() ServerConfigView {
	v := ServerConfigView{
		Path:           "per-frame",
		MaxInFlight:    s.opts.MaxInFlight,
		ReplyCacheSize: s.opts.ReplyCacheSize,
		NetQueues:      s.netQueues,
	}
	if s.opts.NetQueues > s.netQueues {
		v.NetQueuesRequested = s.opts.NetQueues
	}
	if s.opts.SlowLog != nil {
		v.SlowQueryThresholdMicros = float64(s.opts.SlowLog.Threshold().Microseconds())
	}
	if s.dur != nil {
		dv := &DurabilityConfigView{
			Dir:                     s.dur.opts.Dir,
			Sync:                    s.dur.opts.Sync.String(),
			SnapshotIntervalSeconds: s.dur.opts.SnapshotInterval.Seconds(),
			Snapshots:               s.dur.snap != nil,
		}
		if s.dur.opts.Sync == wal.SyncInterval {
			iv := s.dur.opts.SyncInterval
			if iv <= 0 {
				iv = 10 * time.Millisecond
			}
			dv.SyncIntervalMicros = float64(iv.Microseconds())
		}
		v.Durability = dv
	}
	if s.pipe == nil {
		return v
	}
	v.Path = "pipelined"
	ps := s.pipe.runner.Stats()
	pv := &PipelineConfigView{
		Config:       ps.Config.String(),
		GPUDepth:     ps.Config.GPUDepth,
		CPUCoresPre:  ps.Config.CPUCoresPre,
		InsertOn:     ps.Config.InsertOn.String(),
		DeleteOn:     ps.Config.DeleteOn.String(),
		BatchTarget:  ps.Target,
		WorkStealing: ps.Config.WorkStealing,
		Adapt:        s.pipe.ctrl != nil,
	}
	if s.pipe.ctrl != nil {
		pv.Replans = s.pipe.ctrl.Replans()
	}
	v.Pipeline = pv
	return v
}

package dido

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// queueInjectors collects one fault injector per REUSEPORT queue socket —
// with NetQueues > 1 the WrapConn hook fires once per socket, so the single
// *faults.Conn idiom of the older chaos tests does not apply.
type queueInjectors struct {
	mu   sync.Mutex
	conn []*faults.Conn
}

func (qi *queueInjectors) wrap(profile faults.Profile) func(net.PacketConn) net.PacketConn {
	return func(pc net.PacketConn) net.PacketConn {
		qi.mu.Lock()
		defer qi.mu.Unlock()
		inj := faults.Wrap(pc, faults.Symmetric(int64(1000+len(qi.conn)), profile))
		qi.conn = append(qi.conn, inj)
		return inj
	}
}

func (qi *queueInjectors) stats() faults.Stats {
	qi.mu.Lock()
	defer qi.mu.Unlock()
	var sum faults.Stats
	for _, inj := range qi.conn {
		s := inj.Stats()
		sum.Dropped += s.Dropped
		sum.Duplicated += s.Duplicated
		sum.Reordered += s.Reordered
		sum.Corrupted += s.Corrupted
		sum.Delayed += s.Delayed
	}
	return sum
}

func (qi *queueInjectors) count() int {
	qi.mu.Lock()
	defer qi.mu.Unlock()
	return len(qi.conn)
}

// activeQueues counts ingestion queues that received at least one frame.
func activeQueues(srv *Server) (active, total int) {
	qs := srv.FrontendQueueStats("udp")
	for _, q := range qs {
		if q.Frames > 0 {
			active++
		}
	}
	return active, len(qs)
}

// TestMultiQueueChaosEquivalence is the multi-queue acceptance test: a
// 4-queue server behind per-queue fault injectors (drop + duplicate +
// reorder on every socket) must behave exactly like the single-queue one
// under the same chaos — zero client-visible errors, every value correct,
// and every acked SET executed at most once even though duplicates and
// retries may enter through any queue. Runs on both execution paths.
func TestMultiQueueChaosEquivalence(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
			cb := &countingBackend{inner: st}
			qi := &queueInjectors{}
			opts := ServerOptions{
				NetQueues: 4,
				WrapConn: qi.wrap(faults.Profile{
					Drop:    0.10,
					Dup:     0.05,
					Reorder: 0.10,
				}),
			}
			if pipelined {
				opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
			}
			srv := NewServerOpts(cb, opts)
			addr, errc := startServer(t, srv)
			defer srv.Close()

			if want := srv.NetQueues(); qi.count() != want {
				t.Fatalf("injector wrapped %d sockets, server reports %d queues", qi.count(), want)
			}

			// Each client is its own source socket, so the kernel hashes the
			// clients across the REUSEPORT queues.
			const clients = 6
			const rounds = 12
			const batch = 4
			var wg sync.WaitGroup
			var totalSets atomic.Int64
			for ci := 0; ci < clients; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					c, err := DialOpts(addr, ClientOptions{
						Timeout:    50 * time.Millisecond,
						Retries:    30,
						Backoff:    2 * time.Millisecond,
						MaxBackoff: 20 * time.Millisecond,
						Seed:       int64(ci + 1),
					})
					if err != nil {
						t.Errorf("client %d dial: %v", ci, err)
						return
					}
					defer c.Close()
					for r := 0; r < rounds; r++ {
						var sets []Query
						for i := 0; i < batch; i++ {
							sets = append(sets, Query{
								Op:    OpSet,
								Key:   []byte(fmt.Sprintf("c%d:r%02d:k%d", ci, r, i)),
								Value: []byte(fmt.Sprintf("val-%d-%d-%d", ci, r, i)),
							})
						}
						resps, err := c.Do(sets)
						if err != nil {
							t.Errorf("client %d round %d SET: %v", ci, r, err)
							return
						}
						totalSets.Add(int64(len(sets)))
						for i, resp := range resps {
							if resp.Status != StatusOK {
								t.Errorf("client %d round %d SET %d status %d", ci, r, i, resp.Status)
								return
							}
						}
						var gets []Query
						for i := 0; i < batch; i++ {
							gets = append(gets, Query{Op: OpGet, Key: sets[i].Key})
						}
						resps, err = c.Do(gets)
						if err != nil {
							t.Errorf("client %d round %d GET: %v", ci, r, err)
							return
						}
						for i, resp := range resps {
							want := fmt.Sprintf("val-%d-%d-%d", ci, r, i)
							if resp.Status != StatusOK || string(resp.Value) != want {
								t.Errorf("client %d round %d GET %d = %d %q, want OK %q",
									ci, r, i, resp.Status, resp.Value, want)
								return
							}
						}
					}
				}(ci)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// At-most-once across queues: duplicated datagrams and retried
			// frames may arrive on any queue, yet each unique SET executed
			// exactly once against the backend.
			if got, want := int64(cb.setCount()), totalSets.Load(); got != want {
				t.Fatalf("backend executed %d SETs for %d unique requests — dedupe broke across queues", got, want)
			}

			fs := qi.stats()
			if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Reordered == 0 {
				t.Fatalf("injectors idle: %+v", fs)
			}
			if active, total := activeQueues(srv); total > 1 && active < 2 {
				t.Fatalf("kernel did not spread %d clients across %d queues", clients, total)
			} else {
				t.Logf("chaos over %d/%d active queues: faults=%+v server=%+v", active, total, fs, srv.Stats())
			}
			srv.Close()
			waitServe(t, errc)
		})
	}
}

// TestMultiQueueDurableRecovery pins commit-before-ack on the sharded
// ingestion tier: SETs acked through a 4-queue durable server must all
// survive an abrupt Close and reopen, regardless of which queue carried
// them.
func TestMultiQueueDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv := NewServerOpts(st, ServerOptions{
		NetQueues:  4,
		Durability: &DurabilityOptions{Dir: dir},
		Pipeline:   &PipelineOptions{BatchInterval: 200 * time.Microsecond},
	})
	addr, errc := startServer(t, srv)

	const clients = 4
	const perClient = 16
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := DialOpts(addr, ClientOptions{Seed: int64(ci + 1)})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				key := []byte(fmt.Sprintf("d%d:%d", ci, i))
				if err := c.Set(key, []byte(fmt.Sprintf("v%d-%d", ci, i))); err != nil {
					t.Errorf("set %s: %v", key, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if active, total := activeQueues(srv); total > 1 && active < 2 {
		t.Fatalf("durable writes all landed on one of %d queues", total)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitServe(t, errc)

	// Recover into a fresh store; every acked SET must be present.
	st2 := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv2 := NewServerOpts(st2, ServerOptions{Durability: &DurabilityOptions{Dir: dir}})
	defer srv2.Close()
	for ci := 0; ci < clients; ci++ {
		for i := 0; i < perClient; i++ {
			key := []byte(fmt.Sprintf("d%d:%d", ci, i))
			want := fmt.Sprintf("v%d-%d", ci, i)
			v, ok := st2.Get(key)
			if !ok || string(v) != want {
				t.Fatalf("after recovery %s = %q %v, want %q", key, v, ok, want)
			}
		}
	}
}

// TestMultiQueueCloseDrains pins the graceful-drain contract with sharded
// readers: Close during live multi-client traffic must interrupt every
// queue's reader, wait for in-flight frames, and return cleanly — no hang,
// no panic, and Serve returns nil.
func TestMultiQueueCloseDrains(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
			opts := ServerOptions{NetQueues: 4}
			if pipelined {
				opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
			}
			srv := NewServerOpts(st, opts)
			addr, errc := startServer(t, srv)

			var stop atomic.Bool
			var wg sync.WaitGroup
			for ci := 0; ci < 6; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					c, err := DialOpts(addr, ClientOptions{
						Timeout: 20 * time.Millisecond,
						Retries: 0,
						Seed:    int64(ci + 1),
					})
					if err != nil {
						return
					}
					defer c.Close()
					for i := 0; !stop.Load(); i++ {
						// Errors are expected once Close lands; the point is
						// the server side must drain without hanging.
						c.Set([]byte(fmt.Sprintf("dr%d:%d", ci, i)), []byte("v")) //nolint:errcheck
					}
				}(ci)
			}

			// Let traffic flow, then close mid-stream.
			deadline := time.Now().Add(2 * time.Second)
			for srv.Served() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if srv.Served() == 0 {
				t.Fatal("no traffic before Close")
			}
			closed := make(chan error, 1)
			go func() { closed <- srv.Close() }()
			select {
			case err := <-closed:
				if err != nil {
					t.Fatalf("close: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Close hung draining multi-queue readers")
			}
			waitServe(t, errc)
			stop.Store(true)
			wg.Wait()
		})
	}
}

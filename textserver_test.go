package dido

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func startTextServer(t *testing.T) (*TextServer, string) {
	t.Helper()
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv := NewTextServer(st)
	go srv.Serve("127.0.0.1:0")
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			return srv, a.String()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("text server never bound")
	return nil, ""
}

func TestTextServerEndToEnd(t *testing.T) {
	srv, addr := startTextServer(t)
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	fmt.Fprintf(conn, "set user:1 0 0 4\r\nadaa\r\n")
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "STORED" {
		t.Fatalf("set reply: %q", line)
	}
	fmt.Fprintf(conn, "get user:1\r\n")
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "VALUE user:1 0 4") {
		t.Fatalf("get header: %q", line)
	}
	data := make([]byte, 6)
	if _, err := r.Read(data); err != nil {
		t.Fatal(err)
	}
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "END" {
		t.Fatalf("get trailer: %q", line)
	}
	fmt.Fprintf(conn, "delete user:1\r\n")
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "DELETED" {
		t.Fatalf("delete reply: %q", line)
	}
	fmt.Fprintf(conn, "quit\r\n")
}

func TestTextServerConcurrentClients(t *testing.T) {
	srv, addr := startTextServer(t)
	defer srv.Close()

	const clients = 4
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("c%d-k%d", c, i)
				fmt.Fprintf(conn, "set %s 0 0 2\r\nvv\r\n", key)
				if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "STORED" {
					errc <- fmt.Errorf("client %d set %d: %q", c, i, line)
					return
				}
				fmt.Fprintf(conn, "get %s\r\n", key)
				if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "VALUE") {
					errc <- fmt.Errorf("client %d get %d: %q", c, i, line)
					return
				}
				r.ReadString('\n') // value
				r.ReadString('\n') // END
			}
			errc <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTextServerShedsOverSessionBudget(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewTextServer(st)
	srv.MaxSessions = 1
	go srv.Serve("127.0.0.1:0")
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("text server never bound")
	}
	defer srv.Close()

	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	r1 := bufio.NewReader(conn1)
	// Complete a command so the session is registered before the second dial.
	fmt.Fprintf(conn1, "set k 0 0 1\r\nv\r\n")
	if line, _ := r1.ReadString('\n'); strings.TrimSpace(line) != "STORED" {
		t.Fatalf("set reply: %q", line)
	}

	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, _ := bufio.NewReader(conn2).ReadString('\n')
	if strings.TrimSpace(line) != "SERVER_ERROR busy" {
		t.Fatalf("over-budget connection got %q, want SERVER_ERROR busy", line)
	}
	if srv.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", srv.Shed())
	}

	// The admitted session keeps working while the budget is saturated.
	fmt.Fprintf(conn1, "get k\r\n")
	if line, _ := r1.ReadString('\n'); !strings.HasPrefix(line, "VALUE k") {
		t.Fatalf("get header: %q", line)
	}
}

// TestTextServerCloseDrainsSessions checks that Close returns even with an
// idle session parked in a read, and that Serve exits too.
func TestTextServerCloseDrainsSessions(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewTextServer(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "set k 0 0 1\r\nv\r\n")
	if line, _ := r.ReadString('\n'); strings.TrimSpace(line) != "STORED" {
		t.Fatalf("set reply: %q", line)
	}
	// The session now sits idle in a read; Close must unblock and drain it.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not drain the idle session")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestTextServerCloseUnblocksServe(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewTextServer(st)
	done := make(chan error, 1)
	go func() { done <- srv.Serve("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

package dido

import (
	"net"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
)

// TextServer serves a Store over TCP speaking the memcached-compatible ASCII
// protocol (get / gets / set / add / replace / delete / version / quit), so
// stock memcached clients and tools work against it.
type TextServer struct {
	store *Store

	// MaxSessions bounds concurrent sessions; connections beyond the budget
	// are answered with "SERVER_ERROR busy" and closed instead of queuing,
	// mirroring the UDP server's admission control. Set before Serve.
	// 0 means unlimited.
	MaxSessions int

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	sessions map[net.Conn]struct{}
	wg       sync.WaitGroup

	shed stats.Counter
}

// NewTextServer returns a TCP text-protocol server over st.
func NewTextServer(st *Store) *TextServer {
	return &TextServer{store: st, sessions: make(map[net.Conn]struct{})}
}

// Serve listens on addr (e.g. "127.0.0.1:11211") and handles connections
// until Close. It blocks; run it in a goroutine.
func (s *TextServer) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.MaxSessions > 0 && len(s.sessions) >= s.MaxSessions {
			s.mu.Unlock()
			// Shed instead of queuing, like the UDP server's StatusBusy.
			conn.Write([]byte("SERVER_ERROR busy\r\n"))
			conn.Close()
			s.shed.Inc()
			continue
		}
		s.sessions[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			defer func() {
				s.mu.Lock()
				delete(s.sessions, conn)
				s.mu.Unlock()
			}()
			// Session errors are per-connection; the server keeps serving.
			_ = proto.TextSession(conn, s.store)
		}()
	}
}

// Addr returns the bound address, or nil before Serve.
func (s *TextServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Shed returns the number of connections rejected over the session budget.
func (s *TextServer) Shed() uint64 { return s.shed.Load() }

// Close stops accepting and drains: in-flight commands finish, idle sessions
// are unblocked via a read deadline, and Close returns once every session
// has ended. Close is idempotent.
func (s *TextServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.sessions))
	for c := range s.sessions {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		// Unblock sessions parked in a read; the command being executed (if
		// any) still completes and its reply is written before the session
		// loop sees the deadline.
		c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return err
}

// Store must satisfy the text protocol's backend contract.
var _ proto.TextBackend = (*Store)(nil)

package dido

import (
	"net"
	"sync"
	"time"

	"repro/internal/frontend"
	"repro/internal/proto"
	"repro/internal/stats"
)

// TextServer serves a Store over TCP speaking the memcached-compatible ASCII
// protocol (get / gets / set / add / replace / delete / version / quit), so
// stock memcached clients and tools work against it.
//
// Connection-scale admission goes through a frontend.Gate. By default the
// server builds a private gate from MaxSessions; set Gate (before Serve) to
// the core server's ConnGate() instead and the text sessions share one
// connection budget with the RESP frontend — a flood on either protocol
// sheds globally, and the sheds surface in ServerStats.ConnsShed.
type TextServer struct {
	store *Store

	// MaxSessions bounds concurrent sessions; connections beyond the budget
	// are answered with "SERVER_ERROR busy" and closed instead of queuing,
	// mirroring the UDP server's admission control. Set before Serve.
	// 0 means unlimited. Ignored when Gate is set.
	MaxSessions int

	// Gate, when set before Serve, replaces the private MaxSessions budget
	// with a shared connection gate (normally Server.ConnGate()).
	Gate *frontend.Gate

	mu       sync.Mutex
	gate     *frontend.Gate
	listener net.Listener
	closed   bool
	sessions map[net.Conn]struct{}
	wg       sync.WaitGroup

	accepted stats.Counter
	shed     stats.Counter
	bytesIn  stats.Counter
	bytesOut stats.Counter
}

// NewTextServer returns a TCP text-protocol server over st.
func NewTextServer(st *Store) *TextServer {
	return &TextServer{store: st, sessions: make(map[net.Conn]struct{})}
}

// Serve listens on addr (e.g. "127.0.0.1:11211") and handles connections
// until Close. It blocks; run it in a goroutine.
func (s *TextServer) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.listener = ln
	s.gate = s.Gate
	if s.gate == nil {
		s.gate = frontend.NewGate(s.MaxSessions)
	}
	gate := s.gate
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		if !gate.Acquire() {
			// Shed instead of queuing, like the UDP server's StatusBusy.
			s.shed.Inc()
			conn.Write([]byte("SERVER_ERROR busy\r\n"))
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			gate.Release()
			conn.Close()
			continue
		}
		s.accepted.Inc()
		s.sessions[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer gate.Release()
			defer conn.Close()
			defer func() {
				s.mu.Lock()
				delete(s.sessions, conn)
				s.mu.Unlock()
			}()
			// Session errors are per-connection; the server keeps serving.
			cc := &countingConn{Conn: conn, in: &s.bytesIn, out: &s.bytesOut}
			_ = proto.TextSession(cc, s.store)
		}()
	}
}

// countingConn counts transport bytes for FrontendStats.
type countingConn struct {
	net.Conn
	in, out *stats.Counter
}

func (c *countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.out.Add(uint64(n))
	return n, err
}

// Addr returns the bound address, or nil before Serve.
func (s *TextServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Shed returns the number of connections this server rejected over the
// connection budget (its own accept-side count, whether the budget is the
// private MaxSessions gate or a shared one).
func (s *TextServer) Shed() uint64 { return s.shed.Load() }

// Name implements frontend.StatsSource.
func (s *TextServer) Name() string { return "text" }

// FrontendStats implements frontend.StatsSource so the text protocol shows
// up in the per-frontend metrics breakdown alongside udp and resp.
func (s *TextServer) FrontendStats() frontend.Stats {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	return frontend.Stats{
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
		ConnsAccepted: s.accepted.Load(),
		ConnsShed:     s.shed.Load(),
		ConnsActive:   active,
	}
}

// Close stops accepting and drains: in-flight commands finish, idle sessions
// are unblocked via a read deadline, and Close returns once every session
// has ended. Close is idempotent.
func (s *TextServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.sessions))
	for c := range s.sessions {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		// Unblock sessions parked in a read; the command being executed (if
		// any) still completes and its reply is written before the session
		// loop sees the deadline.
		c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return err
}

// Store must satisfy the text protocol's backend contract.
var _ proto.TextBackend = (*Store)(nil)

package dido

import (
	"net"
	"sync"

	"repro/internal/proto"
)

// TextServer serves a Store over TCP speaking the memcached-compatible ASCII
// protocol (get / gets / set / add / replace / delete / version / quit), so
// stock memcached clients and tools work against it.
type TextServer struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// NewTextServer returns a TCP text-protocol server over st.
func NewTextServer(st *Store) *TextServer {
	return &TextServer{store: st}
}

// Serve listens on addr (e.g. "127.0.0.1:11211") and handles connections
// until Close. It blocks; run it in a goroutine.
func (s *TextServer) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			// Session errors are per-connection; the server keeps serving.
			_ = proto.TextSession(conn, s.store)
		}()
	}
}

// Addr returns the bound address, or nil before Serve.
func (s *TextServer) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting and waits for in-flight sessions to finish.
func (s *TextServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// Store must satisfy the text protocol's backend contract.
var _ proto.TextBackend = (*Store)(nil)

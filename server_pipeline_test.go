package dido

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/proto"
)

// pipelinedServer builds a server with the batched pipeline path enabled and
// a batch interval short enough for request/response tests.
func pipelinedServer(b Backend, opts ServerOptions) *Server {
	if opts.Pipeline == nil {
		opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
	}
	return NewServerOpts(b, opts)
}

// TestPipelinedServeBasic drives mixed operations through the pipelined path
// against a real store and checks the answers match the per-frame contract.
func TestPipelinedServeBasic(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv := pipelinedServer(st, ServerOptions{})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if err := c.Set(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	var qs []Query
	for i := 0; i < 20; i++ {
		qs = append(qs, Query{Op: OpGet, Key: []byte(fmt.Sprintf("k%d", i))})
	}
	qs = append(qs, Query{Op: OpGet, Key: []byte("missing")})
	resps, err := c.Do(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("v%d", i)
		if resps[i].Status != StatusOK || string(resps[i].Value) != want {
			t.Fatalf("GET k%d = %d %q, want OK %q", i, resps[i].Status, resps[i].Value, want)
		}
	}
	if resps[20].Status != StatusNotFound {
		t.Fatalf("GET missing = %+v, want NotFound", resps[20])
	}
	// Writes and reads of the same key are split across requests: within one
	// batch the pipeline executes index writes before reads (§III-B batched
	// semantics), so same-frame read-then-delete order is not preserved.
	resps, err = c.Do([]Query{{Op: OpDelete, Key: []byte("k0")}})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Status != StatusOK {
		t.Fatalf("DELETE k0 = %+v, want OK", resps[0])
	}
	if _, ok := st.Get([]byte("k0")); ok {
		t.Fatal("DELETE k0 not applied")
	}

	ps, ok := srv.PipelineStats()
	if !ok {
		t.Fatal("PipelineStats reports the pipeline off")
	}
	if ps.Batches == 0 || ps.Queries == 0 {
		t.Fatalf("pipeline idle: %+v — frames did not go through the batched path", ps)
	}
	if ss := srv.Stats(); ss.Served == 0 || ss.Frames == 0 {
		t.Fatalf("server counters idle on the pipelined path: %+v", ss)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestPipelinedDupWhileInFlight re-runs the PR-2 at-most-once pin with the
// batched path: a retry landing while the original SET is parked inside a
// pipeline stage must be dropped, not re-executed — batching must not reopen
// the in-flight hole.
func TestPipelinedDupWhileInFlight(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	gb := &gatedBackend{
		inner:   st,
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	srv := pipelinedServer(gb, ServerOptions{})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := proto.EncodeFrameV2(nil, 55501, []Query{{Op: OpSet, Key: []byte("dup"), Value: []byte("v")}})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gb.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("original SET never reached the backend through the pipeline")
	}

	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().DupDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate was never observed/dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(gb.release)
	buf := make([]byte, proto.MaxFrameBytes)
	readResp := func() []proto.Response {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		rs, id, _, err := proto.ParseResponseFrameID(buf[:n], nil)
		if err != nil || id != 55501 {
			t.Fatalf("response id %d err %v", id, err)
		}
		return rs
	}
	if rs := readResp(); len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("original response = %+v", rs)
	}
	// Retry after completion: replayed from cache, still one execution.
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if rs := readResp(); len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("replayed response = %+v", rs)
	}
	if n := gb.setCount(); n != 1 {
		t.Fatalf("SET executed %d times through the pipeline, want 1", n)
	}
	ss := srv.Stats()
	if ss.DupDropped != 1 || ss.Replayed != 1 {
		t.Fatalf("dup-dropped=%d replayed=%d, want 1/1", ss.DupDropped, ss.Replayed)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestPipelinedChaosAtMostOnce is the chaos e2e on the batched path: under
// drop/dup/reorder every acknowledged SET executed exactly once and every
// GET returns the value written — identical guarantees to -pipeline=off.
func TestPipelinedChaosAtMostOnce(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	cb := &countingBackend{inner: st}
	var injector *faults.Conn
	srv := pipelinedServer(cb, ServerOptions{
		WrapConn: func(pc net.PacketConn) net.PacketConn {
			injector = faults.Wrap(pc, faults.Symmetric(42, faults.Profile{
				Drop:    0.10,
				Dup:     0.05,
				Reorder: 0.10,
			}))
			return injector
		},
	})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := DialOpts(addr, ClientOptions{
		Timeout:    50 * time.Millisecond,
		Retries:    30,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 40
	const batch = 8
	totalSets := 0
	for r := 0; r < rounds; r++ {
		var sets []Query
		for i := 0; i < batch; i++ {
			sets = append(sets, Query{
				Op:    OpSet,
				Key:   []byte(fmt.Sprintf("r%02d:k%d", r, i)),
				Value: []byte(fmt.Sprintf("val-%d-%d", r, i)),
			})
		}
		resps, err := c.Do(sets)
		if err != nil {
			t.Fatalf("round %d SET: %v", r, err)
		}
		for i, resp := range resps {
			if resp.Status != StatusOK {
				t.Fatalf("round %d SET %d status %d", r, i, resp.Status)
			}
		}
		totalSets += batch
		var gets []Query
		for i := 0; i < batch; i++ {
			gets = append(gets, Query{Op: OpGet, Key: sets[i].Key})
		}
		resps, err = c.Do(gets)
		if err != nil {
			t.Fatalf("round %d GET: %v", r, err)
		}
		for i, resp := range resps {
			want := fmt.Sprintf("val-%d-%d", r, i)
			if resp.Status != StatusOK || string(resp.Value) != want {
				t.Fatalf("round %d GET %d = %d %q, want OK %q", r, i, resp.Status, resp.Value, want)
			}
		}
	}

	// The at-most-once acceptance: despite duplicated and retried frames,
	// each distinct acknowledged SET ran exactly once.
	if n := cb.setCount(); n != totalSets {
		t.Fatalf("backend executed %d SETs for %d distinct acknowledged SETs", n, totalSets)
	}
	fs := injector.Stats()
	if fs.Dropped == 0 || fs.Duplicated == 0 {
		t.Fatalf("injector idle: %+v", fs)
	}
	if cs := c.Stats(); cs.Retries == 0 {
		t.Fatal("no retries under 10%% drop — faults not exercised")
	}
	ps, _ := srv.PipelineStats()
	ss := srv.Stats()
	t.Logf("pipelined chaos: faults=%+v pipe=%+v server={served:%d replayed:%d dup-dropped:%d}",
		fs, ps, ss.Served, ss.Replayed, ss.DupDropped)
	srv.Close()
	waitServe(t, errc)
}

// TestPipelinedOverloadSheds checks StatusBusy shedding still bounds
// admission on the batched path (tokens are held from admission to SD).
func TestPipelinedOverloadSheds(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	slow := faults.WrapBackend(st, faults.BackendConfig{Seed: 5, StallRate: 1, Stall: 5 * time.Millisecond})
	srv := pipelinedServer(slow, ServerOptions{MaxInFlight: 2})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	const clients = 8
	const perClient = 10
	var (
		mu        sync.Mutex
		okCount   int
		busyRound uint64
	)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := DialOpts(addr, ClientOptions{
				Timeout: 500 * time.Millisecond,
				Retries: 2,
				Backoff: time.Millisecond,
				Seed:    int64(ci + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				_, err := c.Do([]Query{{Op: OpSet, Key: []byte(fmt.Sprintf("c%d-k%d", ci, i)), Value: []byte("v")}})
				if err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrTimeout) {
					t.Errorf("client %d req %d: %v", ci, i, err)
				}
				mu.Lock()
				if err == nil {
					okCount++
				}
				mu.Unlock()
			}
			mu.Lock()
			busyRound += c.Stats().BusyRounds
			mu.Unlock()
		}(ci)
	}
	wg.Wait()

	if ss := srv.Stats(); ss.Shed == 0 {
		t.Fatalf("pipelined server never shed over budget 2: %+v", ss)
	}
	if busyRound == 0 {
		t.Fatal("no client observed StatusBusy")
	}
	if okCount == 0 {
		t.Fatal("no request was admitted")
	}
	srv.Close()
	waitServe(t, errc)
}

// TestPipelinedPanicAllowsRetry checks per-frame panic containment inside a
// batch clears the in-flight marker so the client's retry is re-admitted.
func TestPipelinedPanicAllowsRetry(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	pb := &panicOnceBackend{inner: st}
	srv := pipelinedServer(pb, ServerOptions{})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := proto.EncodeFrameV2(nil, 90211, []Query{{Op: OpSet, Key: []byte("retry"), Value: []byte("v")}})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Panics == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panicked frame never observed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, proto.MaxFrameBytes)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("retry after poisoned frame got no reply: %v", err)
	}
	rs, id, _, err := proto.ParseResponseFrameID(buf[:n], nil)
	if err != nil || id != 90211 || len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("retry response = %+v id %d err %v", rs, id, err)
	}
	if v, ok := st.Get([]byte("retry")); !ok || string(v) != "v" {
		t.Fatalf("retried SET not applied: %q/%v", v, ok)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestPipelinedAdaptReplans drives a GET-heavy workload with online
// adaptation on and checks the controller actually re-planned (the first
// measured profile always triggers a plan) while serving stayed correct.
func TestPipelinedAdaptReplans(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv := NewServerOpts(st, ServerOptions{Pipeline: &PipelineOptions{
		BatchInterval: 200 * time.Microsecond,
		Adapt:         true,
	}})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("value-abcdefgh")); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	// ~95% GET traffic in frame-sized batches.
	for round := 0; round < 50; round++ {
		var qs []Query
		for i := 0; i < 19; i++ {
			qs = append(qs, Query{Op: OpGet, Key: []byte(fmt.Sprintf("k%03d", (round*19+i)%keys))})
		}
		qs = append(qs, Query{Op: OpSet, Key: []byte(fmt.Sprintf("k%03d", round%keys)), Value: []byte("value-abcdefgh")})
		resps, err := c.Do(qs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 19; i++ {
			if resps[i].Status != StatusOK {
				t.Fatalf("round %d GET %d = %+v", round, i, resps[i])
			}
		}
	}

	replans, ok := srv.PipelineReplans()
	if !ok {
		t.Fatal("PipelineReplans reports adaptation off")
	}
	if replans == 0 {
		t.Fatal("adaptation never re-planned despite measured profiles")
	}
	ps, _ := srv.PipelineStats()
	if ps.Batches == 0 {
		t.Fatalf("no batches completed: %+v", ps)
	}
	t.Logf("adapt: replans=%d stats=%+v", replans, ps)
	srv.Close()
	waitServe(t, errc)
}

// TestPipelinedWidePath forces the wide batched index path (WideMinGets: 1)
// through the real sharded store and checks end-to-end answers plus the
// WideBatches counter — the server-level proof that SearchBatch /
// ReadCandidatesBatch / GetBatch carried real traffic.
func TestPipelinedWidePath(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20, Shards: 4})
	srv := pipelinedServer(st, ServerOptions{Pipeline: &PipelineOptions{
		BatchInterval: 200 * time.Microsecond,
		WideMinGets:   1,
	}})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 64
	for i := 0; i < keys; i++ {
		if err := c.Set([]byte(fmt.Sprintf("wk%03d", i)), []byte(fmt.Sprintf("wv%03d", i))); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	for round := 0; round < 10; round++ {
		var qs []Query
		for i := 0; i < 20; i++ {
			qs = append(qs, Query{Op: OpGet, Key: []byte(fmt.Sprintf("wk%03d", (round*20+i)%keys))})
		}
		qs = append(qs, Query{Op: OpGet, Key: []byte("wk-missing")})
		resps, err := c.Do(qs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 20; i++ {
			want := fmt.Sprintf("wv%03d", (round*20+i)%keys)
			if resps[i].Status != StatusOK || string(resps[i].Value) != want {
				t.Fatalf("round %d GET %d = %d %q, want OK %q", round, i, resps[i].Status, resps[i].Value, want)
			}
		}
		if resps[20].Status != StatusNotFound {
			t.Fatalf("round %d missing = %+v, want NotFound", round, resps[20])
		}
	}

	ps, ok := srv.PipelineStats()
	if !ok {
		t.Fatal("PipelineStats reports the pipeline off")
	}
	if ps.WideBatches == 0 {
		t.Fatalf("WideBatches = 0 with WideMinGets=1: the wide path never served traffic (%+v)", ps)
	}
	srv.Close()
	waitServe(t, errc)
}

package dido

import (
	"fmt"
	"testing"
	"time"
)

func TestPublicStoreRoundTrip(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	if err := st.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := st.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("get = %q/%v", v, ok)
	}
	if !st.Delete([]byte("k")) {
		t.Fatal("delete failed")
	}
	stats := st.Stats()
	if stats.Sets != 1 || stats.Gets != 1 || stats.Deletes != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 24 {
		t.Fatalf("workloads = %d, want 24", len(ws))
	}
}

func TestSimFacade(t *testing.T) {
	opts := DefaultSimOptions(8 << 20)
	opts.Noise = 0
	sys := NewSim(opts)
	res := RunWorkload(sys, "K16-G95-U", 10)
	if res.ThroughputMOPS <= 0 {
		t.Fatal("no throughput from sim facade")
	}
	if res.AvgLatency <= 0 || res.AvgLatency > 10*time.Millisecond {
		t.Fatalf("latency = %v", res.AvgLatency)
	}
}

func TestRunWorkloadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunWorkload(NewSim(DefaultSimOptions(4<<20)), "K7-G1-U", 1)
}

func TestMegaKVPipelineShape(t *testing.T) {
	cfg := MegaKVPipeline()
	if cfg.GPUDepth != 1 || cfg.WorkStealing {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestServerClientOverUDP(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv := NewServer(st)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve("127.0.0.1:0") }()
	// Wait for bind.
	var addr string
	for i := 0; i < 100; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server never bound")
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := c.Get([]byte("missing")); ok {
		t.Fatal("missing key returned ok")
	}
	existed, err := c.Delete([]byte("alpha"))
	if err != nil || !existed {
		t.Fatalf("delete = %v %v", existed, err)
	}
	existed, _ = c.Delete([]byte("alpha"))
	if existed {
		t.Fatal("double delete reported existing")
	}

	// Batched frame with mixed ops.
	var qs []Query
	for i := 0; i < 50; i++ {
		qs = append(qs, Query{Op: OpSet, Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v")})
	}
	for i := 0; i < 50; i++ {
		qs = append(qs, Query{Op: OpGet, Key: []byte(fmt.Sprintf("k%d", i))})
	}
	resps, err := c.Do(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != StatusOK {
			t.Fatalf("response %d status %d", i, r.Status)
		}
	}
	if srv.Served() != 105 { // 5 single queries + 100 batched
		t.Fatalf("served = %d", srv.Served())
	}

	srv.Close()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not stop")
	}
}

func TestLargeBatchResponseSplitsAcrossDatagrams(t *testing.T) {
	// A batch of large values exceeds one UDP datagram; the server must split
	// the response frames and the client must aggregate them.
	st := NewStore(StoreConfig{MemoryBytes: 32 << 20})
	srv := NewServer(st)
	go srv.Serve("127.0.0.1:0")
	for srv.Addr() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	val := make([]byte, 10<<10) // 10KB values
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < 16; i++ {
		if err := c.Set([]byte(fmt.Sprintf("big:%02d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]Query, 16) // 16 x 10KB = 160KB of response data
	for i := range qs {
		qs[i] = Query{Op: OpGet, Key: []byte(fmt.Sprintf("big:%02d", i))}
	}
	resps, err := c.Do(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 16 {
		t.Fatalf("responses = %d, want 16", len(resps))
	}
	for i, r := range resps {
		if r.Status != StatusOK || len(r.Value) != len(val) {
			t.Fatalf("response %d: status=%d len=%d", i, r.Status, len(r.Value))
		}
		if r.Value[100] != val[100] {
			t.Fatalf("response %d corrupted", i)
		}
	}
}

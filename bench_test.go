// Benchmark entry points, one per reproduced table/figure of the paper's
// evaluation (§V). Each iteration regenerates the figure at a reduced scale
// and reports its headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// sweeps the entire evaluation. For full-resolution tables use
// cmd/dido-bench, which prints the paper-style rows.
package dido_test

import (
	"testing"

	"repro/internal/bench"
)

// benchScale keeps -bench=. affordable (the full sweep regenerates 16
// figures); cmd/dido-bench uses DefaultScale for the real tables.
func benchScale() bench.Scale {
	sc := bench.QuickScale()
	sc.MemBytes = 2 << 20
	sc.Batches = 6
	sc.WarmBatches = 2
	sc.MaxBatch = 1 << 12
	return sc
}

// runFig runs one registered experiment per iteration and reports metric
// (the value of tab.Mean(col) on the first returned table) under name.
func runFig(b *testing.B, id string, col int, metric string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := benchScale()
	var last float64
	for i := 0; i < b.N; i++ {
		tabs := e.Run(sc)
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		last = tabs[0].Mean(col)
	}
	b.ReportMetric(last, metric)
}

func BenchmarkFig04StageTimes(b *testing.B)      { runFig(b, "fig4", 2, "readsend_us") }
func BenchmarkFig05GPUUtilization(b *testing.B)  { runFig(b, "fig5", 0, "gpu_util") }
func BenchmarkFig06IndexOpShares(b *testing.B)   { runFig(b, "fig6", 3, "update_share") }
func BenchmarkFig09CostModelError(b *testing.B)  { runFig(b, "fig9", 0, "err_pct") }
func BenchmarkFig10OptimalityGap(b *testing.B)   { runFig(b, "fig10", 1, "best_over_dido") }
func BenchmarkFig11DIDOvsMegaKV(b *testing.B)    { runFig(b, "fig11", 2, "speedup") }
func BenchmarkFig12Utilization(b *testing.B)     { runFig(b, "fig12", 0, "dido_gpu_util") }
func BenchmarkFig13IndexAssignment(b *testing.B) { runFig(b, "fig13", 2, "speedup") }
func BenchmarkFig14DynamicPipeline(b *testing.B) { runFig(b, "fig14", 2, "speedup") }
func BenchmarkFig15WorkStealing(b *testing.B)    { runFig(b, "fig15", 2, "speedup") }
func BenchmarkFig16AbsoluteThroughput(b *testing.B) {
	runFig(b, "fig16", 3, "discrete_over_dido")
}
func BenchmarkFig17PricePerformance(b *testing.B) { runFig(b, "fig17", 3, "dido_over_discrete") }
func BenchmarkFig18EnergyEfficiency(b *testing.B) { runFig(b, "fig18", 2, "dido_kops_per_w") }
func BenchmarkFig19LatencyBudgets(b *testing.B)   { runFig(b, "fig19", 2, "improvement_1000us_pct") }
func BenchmarkFig20AdaptationTrace(b *testing.B)  { runFig(b, "fig20", 1, "trace_mops") }
func BenchmarkFig21FluctuationCycles(b *testing.B) {
	runFig(b, "fig21", 1, "speedup")
}

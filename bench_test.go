// Benchmark entry points, one per reproduced table/figure of the paper's
// evaluation (§V). Each iteration regenerates the figure at a reduced scale
// and reports its headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// sweeps the entire evaluation. For full-resolution tables use
// cmd/dido-bench, which prints the paper-style rows.
package dido_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	dido "repro"
	"repro/internal/bench"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/wal"
	"repro/internal/zipf"
)

// benchScale keeps -bench=. affordable (the full sweep regenerates 16
// figures); cmd/dido-bench uses DefaultScale for the real tables.
func benchScale() bench.Scale {
	sc := bench.QuickScale()
	sc.MemBytes = 2 << 20
	sc.Batches = 6
	sc.WarmBatches = 2
	sc.MaxBatch = 1 << 12
	return sc
}

// runFig runs one registered experiment per iteration and reports metric
// (the value of tab.Mean(col) on the first returned table) under name.
func runFig(b *testing.B, id string, col int, metric string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := benchScale()
	var last float64
	for i := 0; i < b.N; i++ {
		tabs := e.Run(sc)
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		last = tabs[0].Mean(col)
	}
	b.ReportMetric(last, metric)
}

func BenchmarkFig04StageTimes(b *testing.B)      { runFig(b, "fig4", 2, "readsend_us") }
func BenchmarkFig05GPUUtilization(b *testing.B)  { runFig(b, "fig5", 0, "gpu_util") }
func BenchmarkFig06IndexOpShares(b *testing.B)   { runFig(b, "fig6", 3, "update_share") }
func BenchmarkFig09CostModelError(b *testing.B)  { runFig(b, "fig9", 0, "err_pct") }
func BenchmarkFig10OptimalityGap(b *testing.B)   { runFig(b, "fig10", 1, "best_over_dido") }
func BenchmarkFig11DIDOvsMegaKV(b *testing.B)    { runFig(b, "fig11", 2, "speedup") }
func BenchmarkFig12Utilization(b *testing.B)     { runFig(b, "fig12", 0, "dido_gpu_util") }
func BenchmarkFig13IndexAssignment(b *testing.B) { runFig(b, "fig13", 2, "speedup") }
func BenchmarkFig14DynamicPipeline(b *testing.B) { runFig(b, "fig14", 2, "speedup") }
func BenchmarkFig15WorkStealing(b *testing.B)    { runFig(b, "fig15", 2, "speedup") }
func BenchmarkFig16AbsoluteThroughput(b *testing.B) {
	runFig(b, "fig16", 3, "discrete_over_dido")
}
func BenchmarkFig17PricePerformance(b *testing.B) { runFig(b, "fig17", 3, "dido_over_discrete") }
func BenchmarkFig18EnergyEfficiency(b *testing.B) { runFig(b, "fig18", 2, "dido_kops_per_w") }
func BenchmarkFig19LatencyBudgets(b *testing.B)   { runFig(b, "fig19", 2, "improvement_1000us_pct") }
func BenchmarkFig20AdaptationTrace(b *testing.B)  { runFig(b, "fig20", 1, "trace_mops") }
func BenchmarkFig21FluctuationCycles(b *testing.B) {
	runFig(b, "fig21", 1, "speedup")
}

// benchmarkServe measures end-to-end UDP serving throughput over loopback:
// concurrent clients each driving 64-query frames (95% GET) against a
// prefilled store. One iteration = one frame round-trip. The entry points
// below A/B the per-frame path against the batched pipeline, and each path
// with and without the durability tier (walSync "" disables it; otherwise it
// names the -wal-sync policy: "batch" or "interval").
// serveBenchConfig selects the variant of the saturation A/B: execution path,
// attached observability/durability tiers, and the ingestion tier's shape
// (netQueues REUSEPORT queues; adapt swaps the static stage provider for the
// online planner, which also sizes the effective reader count at startup).
type serveBenchConfig struct {
	pipelined bool
	observed  bool
	walSync   string
	netQueues int
	adapt     bool
}

func benchmarkServe(b *testing.B, cfg serveBenchConfig) {
	pipelined, observed, walSync := cfg.pipelined, cfg.observed, cfg.walSync
	const (
		keys       = 8 << 10
		frameQs    = 64
		valueBytes = 64
	)
	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 64 << 20})
	val := make([]byte, valueBytes)
	// Keys are preformatted: a per-query fmt.Sprintf would cost more CPU than
	// the serving paths under comparison (everything shares one core here).
	keyName := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyName[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
		if err := st.Set(keyName[i], val); err != nil {
			b.Fatal(err)
		}
	}
	opts := dido.ServerOptions{NetQueues: cfg.netQueues}
	if cfg.adapt {
		// The real deployment shape for the multi-queue A/B: -adapt prices
		// RV/PP parallelism in the cost model and sizes the effective reader
		// count at startup (a 1-CPU host gates extra queues off entirely).
		opts.Pipeline = &dido.PipelineOptions{BatchInterval: 100 * time.Microsecond, Adapt: true}
	} else if pipelined {
		// The A/B isolates batched stage execution against per-frame
		// goroutines, so the pipeline gets the shape appropriate for this
		// CPU-only host: the single CPU stage (the same config the online
		// planner converges to in TestPipelinedAdaptReplans). The cost-model
		// driven placement across real CPU/GPU stages is evaluated by the
		// simulated experiments (fig11..fig16); its planner prices a Kaveri
		// APU, which a loopback benchmark on this machine cannot measure.
		opts.Pipeline = &dido.PipelineOptions{
			BatchInterval: 100 * time.Microsecond,
			Provider: &pipeline.StaticProvider{
				Config:   pipeline.Config{GPUDepth: 0},
				Interval: 100 * time.Microsecond,
				MinBatch: pipeline.DefaultLiveMinBatch,
				MaxBatch: pipeline.DefaultLiveMaxBatch,
			},
		}
	}
	// The observed variant prices the observability layer in the hot path:
	// slow-query checks on every completed frame plus a live admin endpoint
	// being scraped during the measurement. Acceptance: ns/op within 2% of
	// the unobserved pipelined run (see bench_results.txt).
	var slow *obs.SlowLog
	if observed {
		slow = obs.NewSlowLog(time.Millisecond, obs.DefaultSlowLogSize, 1)
		opts.SlowLog = slow
	}
	// The durable variants price the WAL in the hot path: every 5%-SET frame
	// appends + group-commits before its ack. Target: ns/op within 10% of the
	// same path without -wal; measured deltas and why the 1-CPU host misses
	// that target are in bench_results.txt ("durability overhead").
	if walSync != "" {
		d := &dido.DurabilityOptions{Dir: b.TempDir()}
		switch walSync {
		case "batch":
			d.Sync = wal.SyncBatch
		case "interval":
			d.Sync = wal.SyncInterval
			d.SyncInterval = 10 * time.Millisecond
		default:
			b.Fatalf("unknown walSync %q", walSync)
		}
		opts.Durability = d
	}
	srv := dido.NewServerOpts(st, opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()
	defer func() {
		srv.Close()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}()

	if observed {
		admin := obs.NewAdmin(obs.AdminOptions{
			Collect: func(w *obs.MetricsWriter) {
				srv.CollectMetrics(w)
				st.CollectMetrics(w)
			},
			Config:  func() any { return srv.ConfigView() },
			SlowLog: slow,
		})
		if err := admin.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer admin.Close()
		// A scraper polling /metrics throughout the run, the way a Prometheus
		// agent would (aggressive 1s interval; production is 10-15s) — the
		// exposition renders from live counters, so this exercises snapshot
		// contention against the serving path.
		stopScrape := make(chan struct{})
		defer close(stopScrape)
		go func() {
			url := "http://" + admin.Addr().String() + "/metrics"
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopScrape:
					return
				case <-tick.C:
					if resp, err := http.Get(url); err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
					}
				}
			}
		}()
	}

	// Many client goroutines per core so the server is saturated and batches
	// actually fill (~10 frames each): the pipeline's win is amortizing
	// per-frame dispatch and send/recv syscalls across frames in flight,
	// which needs enough concurrent senders to keep a queue at the socket.
	// With only a few in-flight frames both paths measure the same — batching
	// pays off under load, which is the regime the paper targets.
	b.SetParallelism(32)
	var cursor atomic.Int64
	var failed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := dido.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		qs := make([]dido.Query, frameQs)
		seq := int(cursor.Add(1)) * 7919 // cheap per-goroutine offset
		for pb.Next() {
			for i := range qs {
				k := keyName[(seq+i)%keys]
				if i%20 == 19 { // 5% SET
					qs[i] = dido.Query{Op: dido.OpSet, Key: k, Value: val}
				} else {
					qs[i] = dido.Query{Op: dido.OpGet, Key: k}
				}
			}
			seq += frameQs
			if _, err := c.Do(qs); err != nil {
				// A saturation benchmark deliberately drives the server into
				// its shedding regime; a frame that exhausts its retry budget
				// on StatusBusy (or times out behind an fsync stall on the
				// durable variants) is designed behavior, not a bench failure.
				// It still cost a full iteration, so it is excluded from the
				// served-query count below.
				if errors.Is(err, dido.ErrBusy) || errors.Is(err, dido.ErrTimeout) {
					failed.Add(1)
					continue
				}
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	served := float64(b.N) - float64(failed.Load())
	qops := served * frameQs / b.Elapsed().Seconds()
	b.ReportMetric(qops/1000, "kqops")
	if n := failed.Load(); n > 0 {
		b.Logf("%d of %d frames failed their retry budget (busy/timeout)", n, b.N)
	}
	if ps, ok := srv.PipelineStats(); ok && ps.Batches > 0 {
		b.ReportMetric(float64(ps.Queries)/float64(ps.Batches), "q/batch")
		replans, _ := srv.PipelineReplans()
		b.Logf("pipeline config: %v (reconfigs=%d replans=%d target=%d)",
			ps.Config, ps.Reconfigs, replans, ps.Target)
	}
	if ds, ok := srv.DurabilityStats(); ok {
		b.Logf("wal: records=%d bytes=%d syncs=%d drops=%d",
			ds.WAL.Records, ds.WAL.Bytes, ds.WAL.Syncs, ds.DroppedAcks)
	}
	reportQueueSpread(b, srv, "udp", cfg.netQueues)
}

// reportQueueSpread records the ingestion tier's shape in the bench output:
// how many queues were effective (the platform can clamp and -adapt can gate
// the requested count down) and the per-queue receive counters proving — or
// disproving — that the kernel actually spread the load.
func reportQueueSpread(b *testing.B, srv *dido.Server, name string, requested int) {
	if requested <= 1 {
		return
	}
	b.ReportMetric(float64(srv.NetQueues()), "queues_effective")
	qs := srv.FrontendQueueStats(name)
	if len(qs) <= 1 {
		return
	}
	qmin, qmax := qs[0].Frames, qs[0].Frames
	for _, q := range qs[1:] {
		if q.Frames < qmin {
			qmin = q.Frames
		}
		if q.Frames > qmax {
			qmax = q.Frames
		}
	}
	b.ReportMetric(float64(qmin)/1000, "kframes_qmin")
	b.ReportMetric(float64(qmax)/1000, "kframes_qmax")
	b.Logf("%s queue spread: %d queues, frames min=%d max=%d", name, len(qs), qmin, qmax)
}

// benchmarkServeSkew measures the pipelined path at saturation under a
// configurable key-popularity distribution, A/B-ing the PR's two skew
// responses: chunk-granular work stealing (-steal) and the hot-key fast path
// (-hot-keys). skew is the Zipf exponent (0 = uniform, 0.99 = YCSB/paper
// default). stealMode selects how stealing is engaged:
//
//	"off"    fixed assignment — the baseline.
//	"on"     forced: a static WorkStealing config plus LiveOptions.Steal,
//	         so every saturated batch runs its stealable phases chunked.
//	"adapt"  the real deployment shape: -adapt -steal, where the cost
//	         model's Eq-3/Eq-4 comparison decides per plan whether a
//	         WorkStealing config is worth installing. On flat workloads it
//	         should gate stealing off (StealBatches stays ~0).
//
// Alongside kqops it reports tmax_p99_us — the p99 wall time of the slowest
// stage, the live analog of the paper's T_max bottleneck term that stealing
// exists to shrink — and logs the steal/hot counters so the A/B's mechanism
// (not just its end-to-end effect) is visible in bench_results.txt.
func benchmarkServeSkew(b *testing.B, skew float64, stealMode string, hotKeys int) {
	const (
		keys       = 64 << 10
		frameQs    = 64
		valueBytes = 64
	)
	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 64 << 20, HotKeys: hotKeys})
	val := make([]byte, valueBytes)
	keyName := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyName[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
		if err := st.Set(keyName[i], val); err != nil {
			b.Fatal(err)
		}
	}
	po := &dido.PipelineOptions{BatchInterval: 100 * time.Microsecond}
	switch stealMode {
	case "off", "on":
		po.Steal = stealMode == "on"
		po.Provider = &pipeline.StaticProvider{
			Config:   pipeline.Config{GPUDepth: 0, WorkStealing: stealMode == "on"},
			Interval: 100 * time.Microsecond,
			MinBatch: pipeline.DefaultLiveMinBatch,
			MaxBatch: pipeline.DefaultLiveMaxBatch,
		}
	case "adapt":
		po.Adapt = true
		po.Steal = true
	default:
		b.Fatalf("unknown stealMode %q", stealMode)
	}
	srv := dido.NewServerOpts(st, dido.ServerOptions{Pipeline: po})
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()
	defer func() {
		srv.Close()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}()

	b.SetParallelism(32)
	var cursor atomic.Int64
	var failed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := dido.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		// Per-goroutine generator: zipf.Generator is not safe for concurrent
		// use, and distinct seeds keep the clients from sampling in lockstep.
		zg := zipf.NewGenerator(keys, skew, 7919*cursor.Add(1))
		qs := make([]dido.Query, frameQs)
		for pb.Next() {
			for i := range qs {
				k := keyName[zg.Next()%keys]
				if i%20 == 19 { // 5% SET
					qs[i] = dido.Query{Op: dido.OpSet, Key: k, Value: val}
				} else {
					qs[i] = dido.Query{Op: dido.OpGet, Key: k}
				}
			}
			if _, err := c.Do(qs); err != nil {
				if errors.Is(err, dido.ErrBusy) || errors.Is(err, dido.ErrTimeout) {
					failed.Add(1)
					continue
				}
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	served := float64(b.N) - float64(failed.Load())
	b.ReportMetric(served*frameQs/b.Elapsed().Seconds()/1000, "kqops")
	if sq, ok := srv.PipelineStageQuantiles(0.99); ok {
		tmax := 0.0
		for si := range sq {
			if sq[si][0] > tmax {
				tmax = sq[si][0]
			}
		}
		b.ReportMetric(tmax, "tmax_p99_us")
	}
	if ps, ok := srv.PipelineStats(); ok && ps.Batches > 0 {
		b.Logf("pipeline config: %v  batches=%d q/batch=%.0f steal[batches=%d chunks=%d queries=%d]",
			ps.Config, ps.Batches, float64(ps.Queries)/float64(ps.Batches),
			ps.StealBatches, ps.StolenChunks, ps.StolenQueries)
	}
	if ss := st.Stats(); hotKeys > 0 {
		b.Logf("hot-key fast path: hot=%d of gets=%d (%.1f%%)",
			ss.HotHits, ss.Gets, 100*float64(ss.HotHits)/float64(ss.Gets))
	}
	if n := failed.Load(); n > 0 {
		b.Logf("%d of %d frames failed their retry budget (busy/timeout)", n, b.N)
	}
}

// The Zipf A/B quartet behind ISSUE 7's acceptance row: skewed saturation
// with stealing off/on and the hot-key table off/on, plus the uniform
// control where -adapt -steal should keep stealing gated off. On a 1-CPU
// host all stage groups share one core, so the steal deltas here measure
// protocol overhead more than parallel speedup — bench_results.txt records
// both runs and the caveat.
func BenchmarkServeZipfPinned(b *testing.B) { benchmarkServeSkew(b, 0.99, "off", 0) }
func BenchmarkServeZipfSteal(b *testing.B)  { benchmarkServeSkew(b, 0.99, "on", 0) }
func BenchmarkServeZipfHotKeys(b *testing.B) {
	benchmarkServeSkew(b, 0.99, "off", 1024)
}
func BenchmarkServeZipfStealHotKeys(b *testing.B) {
	benchmarkServeSkew(b, 0.99, "on", 1024)
}
func BenchmarkServeUniformPinned(b *testing.B) { benchmarkServeSkew(b, 0, "off", 0) }
func BenchmarkServeUniformAdaptSteal(b *testing.B) {
	benchmarkServeSkew(b, 0, "adapt", 0)
}

func BenchmarkServePerFrame(b *testing.B)  { benchmarkServe(b, serveBenchConfig{}) }
func BenchmarkServePipelined(b *testing.B) { benchmarkServe(b, serveBenchConfig{pipelined: true}) }

// The Q4 variants shard ingestion across 4 SO_REUSEPORT queues (each with its
// own reader, sender and address cache). RunParallel's per-goroutine clients
// are distinct source sockets, so the kernel hashes them across the queues —
// the per-queue frame counters in the bench log prove the spread. AdaptQ4 is
// the deployment shape: the online planner prices RV/PP parallelism and sizes
// the effective reader count at startup, so on a 1-CPU host queues_effective
// reports the controller gating the extra readers off.
func BenchmarkServePerFrameQ4(b *testing.B) { benchmarkServe(b, serveBenchConfig{netQueues: 4}) }
func BenchmarkServePipelinedQ4(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{pipelined: true, netQueues: 4})
}
func BenchmarkServePipelinedAdaptQ4(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{pipelined: true, netQueues: 4, adapt: true})
}

// benchmarkServeScan prices the range-scan path at saturation: the same
// loopback harness as the point-op A/B, but against an ordered store with a
// zipf-skewed point-read/scan mix — 1 in 8 queries is a bounded 16-entry
// SCAN starting at a zipf-sampled key, the rest are zipf GETs with the usual
// 5% SETs (which now also pay the ordered-index upsert). The per-frame vs
// pipelined pair shows what batched range merges (one MVCC snapshot set per
// batch, task.SC) buy over per-frame scanning; entries/scan confirms scans
// did real merge work rather than degenerating to point reads.
func benchmarkServeScan(b *testing.B, pipelined bool) {
	const (
		keys       = 8 << 10
		frameQs    = 64
		valueBytes = 64
		scanLimit  = 16
	)
	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 64 << 20, Ordered: true})
	val := make([]byte, valueBytes)
	keyName := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyName[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
		if err := st.Set(keyName[i], val); err != nil {
			b.Fatal(err)
		}
	}
	opts := dido.ServerOptions{}
	if pipelined {
		opts.Pipeline = &dido.PipelineOptions{
			BatchInterval: 100 * time.Microsecond,
			Provider: &pipeline.StaticProvider{
				Config:   pipeline.Config{GPUDepth: 0},
				Interval: 100 * time.Microsecond,
				MinBatch: pipeline.DefaultLiveMinBatch,
				MaxBatch: pipeline.DefaultLiveMaxBatch,
			},
		}
	}
	srv := dido.NewServerOpts(st, opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()
	defer func() {
		srv.Close()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}()

	b.SetParallelism(32)
	var cursor atomic.Int64
	var failed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := dido.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		zg := zipf.NewGenerator(keys, 0.99, 7919*cursor.Add(1))
		qs := make([]dido.Query, frameQs)
		for pb.Next() {
			for i := range qs {
				k := keyName[zg.Next()%keys]
				switch {
				case i%8 == 7: // 12.5% SCAN
					qs[i] = proto.ScanQuery(k, nil, scanLimit)
				case i%20 == 19: // 5% SET
					qs[i] = dido.Query{Op: dido.OpSet, Key: k, Value: val}
				default:
					qs[i] = dido.Query{Op: dido.OpGet, Key: k}
				}
			}
			if _, err := c.Do(qs); err != nil {
				if errors.Is(err, dido.ErrBusy) || errors.Is(err, dido.ErrTimeout) {
					failed.Add(1)
					continue
				}
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	served := float64(b.N) - float64(failed.Load())
	b.ReportMetric(served*frameQs/b.Elapsed().Seconds()/1000, "kqops")
	if ss := st.Stats(); ss.Scans > 0 {
		b.ReportMetric(float64(ss.ScanEntries)/float64(ss.Scans), "entries/scan")
	}
	if ps, ok := srv.PipelineStats(); ok && ps.Batches > 0 {
		b.ReportMetric(float64(ps.Queries)/float64(ps.Batches), "q/batch")
	}
	if n := failed.Load(); n > 0 {
		b.Logf("%d of %d frames failed their retry budget (busy/timeout)", n, b.N)
	}
}

func BenchmarkServeScanPerFrame(b *testing.B)  { benchmarkServeScan(b, false) }
func BenchmarkServeScanPipelined(b *testing.B) { benchmarkServeScan(b, true) }

// benchmarkServeRESP is the UDP A/B's TCP/RESP counterpart: the same store,
// key space, value size and 5%-SET mix driven through the RESP front end with
// the in-repo pipelining client (one command per query, one write per batch).
// Beyond the TCP+RESP framing tax, the mixed workload prices the front end's
// sequential-semantics contract: command runs seal at read↔write boundaries,
// so a 64-command batch with interleaved SETs fragments into ~7 frames where
// the binary protocol carries it as 1 (see bench_results.txt).
func benchmarkServeRESP(b *testing.B, pipelined bool, netQueues int) {
	const (
		keys       = 8 << 10
		frameQs    = 64
		valueBytes = 64
	)
	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 64 << 20})
	val := make([]byte, valueBytes)
	keyName := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyName[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
		if err := st.Set(keyName[i], val); err != nil {
			b.Fatal(err)
		}
	}
	opts := dido.ServerOptions{NetQueues: netQueues}
	if pipelined {
		opts.Pipeline = &dido.PipelineOptions{
			BatchInterval: 100 * time.Microsecond,
			Provider: &pipeline.StaticProvider{
				Config:   pipeline.Config{GPUDepth: 0},
				Interval: 100 * time.Microsecond,
				MinBatch: pipeline.DefaultLiveMinBatch,
				MaxBatch: pipeline.DefaultLiveMaxBatch,
			},
		}
	}
	srv := dido.NewServerOpts(st, opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeRESP("127.0.0.1:0") }()
	for srv.RESPAddr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.RESPAddr().String()
	defer func() {
		srv.Close()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}()

	b.SetParallelism(32)
	var cursor atomic.Int64
	var busyQueries atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := frontend.DialRESP(addr, 10*time.Second)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		qs := make([]dido.Query, frameQs)
		seq := int(cursor.Add(1)) * 7919
		for pb.Next() {
			for i := range qs {
				k := keyName[(seq+i)%keys]
				if i%20 == 19 { // 5% SET
					qs[i] = dido.Query{Op: dido.OpSet, Key: k, Value: val}
				} else {
					qs[i] = dido.Query{Op: dido.OpGet, Key: k}
				}
			}
			seq += frameQs
			resps, err := c.Do(qs)
			if err != nil {
				b.Error(err)
				return
			}
			// Per-conn admission sheds individual frames with -BUSY rather
			// than failing the whole round trip; exclude shed queries from
			// the served count the way the UDP harness excludes ErrBusy.
			for _, r := range resps {
				if r.Status == dido.StatusBusy {
					busyQueries.Add(1)
				}
			}
		}
	})
	b.StopTimer()
	served := float64(b.N)*frameQs - float64(busyQueries.Load())
	b.ReportMetric(served/b.Elapsed().Seconds()/1000, "kqops")
	if n := busyQueries.Load(); n > 0 {
		b.Logf("%d of %d queries shed with -BUSY", n, int64(b.N)*frameQs)
	}
	if ps, ok := srv.PipelineStats(); ok && ps.Batches > 0 {
		b.ReportMetric(float64(ps.Queries)/float64(ps.Batches), "q/batch")
	}
	reportQueueSpread(b, srv, "resp", netQueues)
}

func BenchmarkServeRESPPerFrame(b *testing.B)  { benchmarkServeRESP(b, false, 1) }
func BenchmarkServeRESPPipelined(b *testing.B) { benchmarkServeRESP(b, true, 1) }

// BenchmarkServeRESPPipelinedQ4 shards the RESP accept path across 4
// REUSEPORT listeners sharing one ConnGate; each per-goroutine client is its
// own TCP connection, so the kernel spreads accepts across the listeners.
func BenchmarkServeRESPPipelinedQ4(b *testing.B) { benchmarkServeRESP(b, true, 4) }

// BenchmarkServePipelinedObserved is BenchmarkServePipelined with the full
// observability layer attached: slow-query log on every frame completion and
// an admin endpoint scraped every 50ms during the run.
func BenchmarkServePipelinedObserved(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{pipelined: true, observed: true})
}

// The Durable variants attach the durability tier with -wal-sync batch (the
// default: group-commit fsync before every ack). Group commit is what keeps
// the overhead bounded — under 32-way parallelism, concurrent write-bearing
// frames share one fsync. The Interval variants relax the ack-time fsync to a
// 10ms background sync (acked writes can lose up to one interval on power
// loss, not on process crash).
func BenchmarkServePerFrameDurable(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{walSync: "batch"})
}
func BenchmarkServePipelinedDurable(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{pipelined: true, walSync: "batch"})
}
func BenchmarkServePerFrameDurableInterval(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{walSync: "interval"})
}
func BenchmarkServePipelinedDurableInterval(b *testing.B) {
	benchmarkServe(b, serveBenchConfig{pipelined: true, walSync: "interval"})
}

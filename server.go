package dido

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
)

// Server serves a Store over UDP using the batched binary protocol: each
// datagram carries a frame of queries (the paper batches "queries and their
// responses in an Ethernet frame as many as possible", §V-A), and each
// receives one response frame.
type Server struct {
	store *Store

	mu     sync.Mutex
	conn   *net.UDPConn
	closed atomic.Bool

	served atomic.Uint64
}

// NewServer returns a UDP server over st.
func NewServer(st *Store) *Server {
	return &Server{store: st}
}

// Serve listens on addr (e.g. "127.0.0.1:11211") and processes frames until
// Close. It blocks; run it in a goroutine.
func (s *Server) Serve(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()

	buf := make([]byte, proto.MaxFrameBytes)
	var queries []proto.Query
	var resps []proto.Response
	var out []byte
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		queries, err = proto.ParseFrame(buf[:n], queries[:0])
		if err != nil {
			continue // malformed frame: drop, as a UDP service must
		}
		resps = s.process(queries, resps[:0])
		// A batch of large values can exceed one datagram; split the
		// responses across as many frames as needed (the client aggregates
		// until it has one response per query).
		start := 0
		for {
			end := start
			bytes := 0
			for end < len(resps) {
				rlen := 5 + len(resps[end].Value)
				if end > start && bytes+rlen > maxResponsePayload {
					break
				}
				bytes += rlen
				end++
			}
			out = proto.EncodeResponseFrame(out[:0], resps[start:end])
			if _, err := conn.WriteToUDP(out, raddr); err != nil {
				if s.closed.Load() {
					return nil
				}
				break // oversized single value or transient error: drop rest
			}
			start = end
			if start >= len(resps) {
				break
			}
		}
	}
}

// maxResponsePayload keeps each response frame within a safe UDP datagram.
const maxResponsePayload = 60 << 10

// process executes one frame's queries.
func (s *Server) process(queries []proto.Query, resps []proto.Response) []proto.Response {
	for _, q := range queries {
		switch q.Op {
		case proto.OpGet:
			if v, ok := s.store.Get(q.Key); ok {
				resps = append(resps, proto.Response{Status: proto.StatusOK, Value: v})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusNotFound})
			}
		case proto.OpSet:
			if err := s.store.Set(q.Key, q.Value); err != nil {
				resps = append(resps, proto.Response{Status: proto.StatusError})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusOK})
			}
		case proto.OpDelete:
			if s.store.Delete(q.Key) {
				resps = append(resps, proto.Response{Status: proto.StatusOK})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusNotFound})
			}
		}
		s.served.Add(1)
	}
	return resps
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// Served returns the number of queries processed.
func (s *Server) Served() uint64 { return s.served.Load() }

// Close stops the server.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

// Client is a UDP client for a Server. It batches queries per call: Do sends
// one frame and waits for the response frame. Client is not safe for
// concurrent use; create one per goroutine.
type Client struct {
	conn *net.UDPConn
	buf  []byte
	out  []byte
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, buf: make([]byte, proto.MaxFrameBytes)}, nil
}

// ErrShortResponse reports a response frame with fewer entries than queries.
var ErrShortResponse = errors.New("dido: response frame shorter than query frame")

// Do sends queries as one frame and returns the per-query responses. The
// server may split large response sets across several datagrams; Do reads
// until it has one response per query. Value slices in the responses are
// copies and remain valid after the next Do.
func (c *Client) Do(queries []proto.Query) ([]proto.Response, error) {
	c.out = proto.EncodeFrame(c.out[:0], queries)
	if _, err := c.conn.Write(c.out); err != nil {
		return nil, err
	}
	var resps []proto.Response
	for len(resps) < len(queries) {
		n, err := c.conn.Read(c.buf)
		if err != nil {
			return resps, err
		}
		before := len(resps)
		resps, err = proto.ParseResponseFrame(c.buf[:n], resps)
		if err != nil {
			return resps, err
		}
		// Copy values out of the receive buffer before it is reused.
		for i := before; i < len(resps); i++ {
			if len(resps[i].Value) > 0 {
				resps[i].Value = append([]byte(nil), resps[i].Value...)
			}
		}
		if len(resps) == before && len(queries) > 0 {
			// An empty frame for a non-empty batch means the server dropped
			// the batch (oversized value); surface the shortfall.
			return resps, ErrShortResponse
		}
	}
	return resps, nil
}

// Get fetches one key.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	resps, err := c.Do([]proto.Query{{Op: proto.OpGet, Key: key}})
	if err != nil {
		return nil, false, err
	}
	if resps[0].Status != proto.StatusOK {
		return nil, false, nil
	}
	return resps[0].Value, true, nil
}

// Set stores one key-value pair.
func (c *Client) Set(key, value []byte) error {
	resps, err := c.Do([]proto.Query{{Op: proto.OpSet, Key: key, Value: value}})
	if err != nil {
		return err
	}
	if resps[0].Status != proto.StatusOK {
		return errors.New("dido: server rejected SET")
	}
	return nil
}

// Delete removes one key, reporting whether it existed.
func (c *Client) Delete(key []byte) (bool, error) {
	resps, err := c.Do([]proto.Query{{Op: proto.OpDelete, Key: key}})
	if err != nil {
		return false, err
	}
	return resps[0].Status == proto.StatusOK, nil
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.conn.Close() }

// Query re-exports the wire query type for clients building batches.
type Query = proto.Query

// Response re-exports the wire response type.
type Response = proto.Response

// Re-exported query ops and statuses.
const (
	OpGet          = proto.OpGet
	OpSet          = proto.OpSet
	OpDelete       = proto.OpDelete
	StatusOK       = proto.StatusOK
	StatusNotFound = proto.StatusNotFound
	StatusError    = proto.StatusError
)

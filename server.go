package dido

import (
	"errors"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/udpbatch"
)

// Backend is the store surface the UDP server serves. *Store implements it;
// tests and the fault injector substitute their own.
type Backend interface {
	Get(key []byte) ([]byte, bool)
	Set(key, value []byte) error
	Delete(key []byte) bool
}

// GetIntoBackend is an optional Backend extension. When the backend provides
// it (as *Store does), the server serves GETs by appending values into a
// pooled per-frame buffer instead of allocating a copy per query.
type GetIntoBackend interface {
	GetInto(key, dst []byte) ([]byte, bool)
}

// ServerOptions tunes the fault-tolerance behavior of a Server. The zero
// value gives production defaults.
type ServerOptions struct {
	// MaxInFlight bounds how many frames are processed concurrently. When
	// the budget is exhausted, new frames are shed immediately with
	// StatusBusy responses instead of queuing unboundedly, keeping the
	// latency of admitted frames bounded under overload. 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// ReplyCacheSize bounds how many recent request replies are retained
	// (per client address + request ID) to answer retried frames without
	// re-executing them. 0 means DefaultReplyCacheSize; negative disables
	// the cache.
	ReplyCacheSize int
	// WrapConn, when set, wraps the listening socket before serving. This
	// is the hook the fault injector (internal/faults) uses.
	WrapConn func(net.PacketConn) net.PacketConn
	// Pipeline, when non-nil, serves admitted frames through the batched
	// task-granular pipeline (see server_pipeline.go) instead of one
	// goroutine per frame. Admission, dedupe and at-most-once semantics are
	// identical on both paths.
	Pipeline *PipelineOptions
	// SlowLog, when non-nil, records frames whose admission→response latency
	// exceeds its threshold, on both serving paths. The below-threshold cost
	// is one clock read and an atomic compare per frame (see internal/obs).
	SlowLog *obs.SlowLog
	// Durability, when non-nil with a Dir, attaches the durability tier:
	// startup recovery from snapshot + WAL, write-ahead logging of every
	// acknowledged write on both serving paths, and periodic snapshots that
	// truncate the log (see server_durability.go). Opening it can fail (disk
	// errors, corrupt snapshot) — use NewServerDurable to observe the error.
	Durability *DurabilityOptions
}

// Defaults for ServerOptions zero fields.
const (
	DefaultMaxInFlight    = 256
	DefaultReplyCacheSize = 4096
)

// Server serves a Backend over UDP using the batched binary protocol: each
// datagram carries a frame of queries (the paper batches "queries and their
// responses in an Ethernet frame as many as possible", §V-A), and each
// receives one or more response frames.
//
// The serving path is hardened for lossy networks and overload: frames are
// processed by a bounded pool (excess load is shed with StatusBusy), v2
// request IDs deduplicate retried frames through a reply cache, a poisoned
// frame cannot kill the serve loop (per-frame recover), and Close drains
// in-flight frames before the socket is torn down.
type Server struct {
	store   Backend
	getInto GetIntoBackend // non-nil when store implements the fast GET path
	opts    ServerOptions

	mu     sync.Mutex
	conn   net.PacketConn
	closed atomic.Bool

	pipe *serverPipeline // non-nil when opts.Pipeline is set
	dur  *durability     // non-nil when opts.Durability is set

	// drained closes when the serve loop has finished its graceful drain (or
	// exited); Close waits on it before fsyncing the WAL tail.
	drained   chan struct{}
	drainOnce sync.Once

	tokens  chan struct{}
	wg      sync.WaitGroup
	replies *replyCache
	bufs    sync.Pool
	scratch sync.Pool // *frameScratch: per-frame query/response/value reuse
	addrs   addrCache

	served     stats.Counter
	frames     stats.Counter
	shed       stats.Counter
	replayed   stats.Counter
	dupDropped stats.Counter
	malformed  stats.Counter
	panics     stats.Counter
}

// frameScratch holds the per-frame slices that are pooled across frames so
// the steady-state GET path performs no allocations: parsed queries, the
// response set, and a flat arena the backend appends values into.
type frameScratch struct {
	queries []proto.Query
	resps   []proto.Response
	vals    []byte
}

// NewServer returns a UDP server over b with default options.
func NewServer(b Backend) *Server {
	return NewServerOpts(b, ServerOptions{})
}

// NewServerOpts returns a UDP server over b with the given options. When
// opts.Durability is set, opening the tier can fail; this constructor panics
// on that error — use NewServerDurable to handle it.
func NewServerOpts(b Backend, opts ServerOptions) *Server {
	s, err := newServer(b, opts)
	if err != nil {
		panic("dido: " + err.Error() + " (use NewServerDurable)")
	}
	return s
}

// NewServerDurable returns a UDP server over b, running startup recovery and
// opening the write-ahead log when opts.Durability is set. It is the
// error-returning form of NewServerOpts for durable servers: recovery reads
// disk state and can fail.
func NewServerDurable(b Backend, opts ServerOptions) (*Server, error) {
	return newServer(b, opts)
}

func newServer(b Backend, opts ServerOptions) (*Server, error) {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	cacheSize := opts.ReplyCacheSize
	if cacheSize == 0 {
		cacheSize = DefaultReplyCacheSize
	}
	s := &Server{
		store:   b,
		opts:    opts,
		drained: make(chan struct{}),
		tokens:  make(chan struct{}, opts.MaxInFlight),
	}
	if gi, ok := b.(GetIntoBackend); ok {
		s.getInto = gi
	}
	if cacheSize > 0 {
		s.replies = newReplyCache(cacheSize)
	}
	s.bufs.New = func() any { return make([]byte, proto.MaxFrameBytes) }
	s.scratch.New = func() any { return &frameScratch{} }
	// Durability opens before the pipeline: recovery must finish before any
	// frame can execute, and initPipeline arms its LG hook only when s.dur
	// is already set.
	if opts.Durability != nil && opts.Durability.Dir != "" {
		dur, err := openDurability(b, s.replies, *opts.Durability)
		if err != nil {
			return nil, err
		}
		s.dur = dur
	}
	if opts.Pipeline != nil {
		s.initPipeline(opts.Pipeline)
	}
	return s, nil
}

// Serve listens on addr (e.g. "127.0.0.1:11211") and processes frames until
// Close. It blocks; run it in a goroutine. After Close, Serve returns only
// once in-flight frames have drained.
func (s *Server) Serve(addr string) error {
	// Whatever path Serve exits by, it has stopped admitting frames and (on
	// the graceful path) drained the in-flight ones; Close waits on this
	// before fsyncing the WAL tail.
	defer s.drainOnce.Do(func() { close(s.drained) })
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	var pc net.PacketConn = conn
	if s.opts.WrapConn != nil {
		pc = s.opts.WrapConn(pc)
	}
	s.mu.Lock()
	s.conn = pc
	s.mu.Unlock()
	// Close may have run before the conn was published; it then had nothing
	// to close, so re-check and shut the listener down ourselves. (The
	// pipeline runner may already be closed by Close, or not; its Close is
	// idempotent.)
	if s.closed.Load() {
		pc.Close()
		if s.pipe != nil {
			s.pipe.runner.Close()
		}
		return nil
	}
	return s.serveLoop(pc)
}

// serveLoop is the read/admit/dispatch loop.
func (s *Server) serveLoop(pc net.PacketConn) error {
	if s.pipe != nil {
		return s.serveLoopBatched(pc)
	}
	for {
		buf := s.bufs.Get().([]byte)
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			s.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
			if done, serr := s.readErr(pc, err); done {
				return serr
			}
			continue
		}
		s.admit(pc, buf, n, raddr)
	}
}

// serveLoopBatched is the pipelined-path variant of serveLoop: it drains
// bursts of datagrams per kernel crossing (recvmmsg where available) before
// running the same per-datagram admission. Batching receives mirrors the
// batched response sends — once frames are executed batch-at-a-time, the
// recv syscall is the remaining per-frame kernel crossing worth amortizing.
func (s *Server) serveLoopBatched(pc net.PacketConn) error {
	rcv := udpbatch.NewReceiver(pc)
	const burst = 16
	bufs := make([][]byte, burst)
	addrs := make([]net.Addr, burst)
	sizes := make([]int, burst)
	for {
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = s.bufs.Get().([]byte)
			}
		}
		got, err := rcv.Recv(bufs, addrs, sizes)
		if err != nil {
			if done, serr := s.readErr(pc, err); done {
				for _, buf := range bufs {
					if buf != nil {
						s.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
					}
				}
				return serr
			}
			continue
		}
		for i := 0; i < got; i++ {
			buf := bufs[i]
			bufs[i] = nil // ownership moves to admit
			s.admit(pc, buf, sizes[i], addrs[i])
		}
	}
}

// readErr handles a receive error shared by both serve loops: it reports
// whether the loop should exit, performing the graceful drain on shutdown.
func (s *Server) readErr(pc net.PacketConn, err error) (done bool, _ error) {
	if s.closed.Load() {
		// Graceful drain: in-flight frames finish and write their
		// responses before the socket goes away. On the pipelined
		// path wg.Wait needs the runner still executing, so the
		// runner shuts down after the drain.
		s.wg.Wait()
		if s.pipe != nil {
			s.pipe.runner.Close()
		}
		pc.Close()
		return true, nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false, nil
	}
	return true, err
}

// admit runs the per-datagram admission pipeline — header check, reply-cache
// dedupe, token gate — and dispatches the frame to the configured serving
// path. It takes ownership of buf.
func (s *Server) admit(pc net.PacketConn, buf []byte, n int, raddr net.Addr) {
	// The slow-query clock starts at admission so a recorded latency covers
	// everything the client waited on server-side: dedupe, batching, staged
	// execution and the response send. Read only when a log is attached.
	var start time.Time
	if s.opts.SlowLog != nil {
		start = time.Now()
	}
	count, reqID, v2, herr := proto.FrameHeader(buf[:n])
	if herr != nil {
		// Malformed or corrupted frame: drop, as a UDP service must.
		s.malformed.Inc()
		s.bufs.Put(buf)
		return
	}
	// A retried frame whose reply was already computed is answered from
	// the cache without re-executing it or consuming a token; this is
	// what makes client retries of SET safe (at-most-once execution).
	// A retry that lands while the original frame is still executing is
	// dropped — admitting it would re-execute the SET before the reply
	// cache is populated, reopening the at-most-once hole. The client
	// simply retries again and is then answered from the cache.
	var akey string
	tracked := false
	if v2 && reqID != 0 && s.replies != nil {
		akey = s.addrs.keyFor(raddr)
		frames, state := s.replies.begin(akey, reqID)
		switch state {
		case replyCached:
			for _, f := range frames {
				pc.WriteTo(f, raddr)
			}
			s.replayed.Inc()
			s.bufs.Put(buf)
			return
		case replyInFlight:
			s.dupDropped.Inc()
			s.bufs.Put(buf)
			return
		case replyAdmitted:
			tracked = true
		}
	}
	select {
	case s.tokens <- struct{}{}:
	default:
		// Overload: shed the whole frame now rather than queuing it.
		if tracked {
			s.replies.abort(akey, reqID)
		}
		s.shed.Inc()
		s.writeBusy(pc, raddr, reqID, v2, count)
		s.bufs.Put(buf)
		return
	}
	s.wg.Add(1)
	if s.pipe != nil {
		// Pipelined path: parse here (RV/PP on the socket reader) and
		// batch the frame into the staged executor.
		s.submitPipelined(pc, buf, n, raddr, akey, reqID, v2, tracked, start)
		return
	}
	go s.handleFrame(pc, buf, n, raddr, akey, reqID, v2, tracked, start)
}

// addrCache memoizes net.Addr → string conversions so the reply-cache path
// does not allocate a fresh address string per datagram. UDP addresses are
// keyed by their comparable netip.AddrPort form; other address types fall
// back to String().
type addrCache struct {
	mu sync.Mutex
	m  map[netip.AddrPort]string
}

// addrCacheMax bounds the memoized address set; beyond it the map is reset
// (a full rebuild is cheaper than tracking recency for a niche overflow).
const addrCacheMax = 4096

func (ac *addrCache) keyFor(a net.Addr) string {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return a.String()
	}
	ap := ua.AddrPort()
	ac.mu.Lock()
	if s, ok := ac.m[ap]; ok {
		ac.mu.Unlock()
		return s
	}
	ac.mu.Unlock()
	s := a.String()
	ac.mu.Lock()
	if ac.m == nil || len(ac.m) >= addrCacheMax {
		ac.m = make(map[netip.AddrPort]string, 64)
	}
	ac.m[ap] = s
	ac.mu.Unlock()
	return s
}

// handleFrame processes one admitted frame in its own goroutine. start is
// the admission time when a slow-query log is attached (zero otherwise).
func (s *Server) handleFrame(pc net.PacketConn, buf []byte, n int, raddr net.Addr, akey string, reqID uint64, v2, tracked bool, start time.Time) {
	defer s.wg.Done()
	defer func() { <-s.tokens }()
	defer s.bufs.Put(buf)
	if tracked {
		// Clear the in-flight marker on every exit path (panic, malformed,
		// failed send); a successful sendResponses clears it atomically with
		// the reply-cache fill, making this a no-op.
		defer s.replies.abort(akey, reqID)
	}
	// One poisoned frame must not kill the serve loop: the client times out
	// and retries; everyone else is unaffected.
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
		}
	}()
	sc := s.scratch.Get().(*frameScratch)
	defer s.scratch.Put(sc)
	queries, _, err := proto.ParseFrameID(buf[:n], sc.queries[:0])
	sc.queries = queries[:0]
	if err != nil {
		s.malformed.Inc()
		return
	}
	s.frames.Inc()
	resps := s.process(queries, sc)
	if s.dur != nil {
		// Redo-after-apply: the writes already executed; their records must
		// be durable before the ack. The response frames are encoded first so
		// the REPLY record binds the exact reply the client will see.
		frames := appendResponseFrames(nil, reqID, v2, resps)
		if !s.dur.commitFrame(queries, resps, akey, reqID, tracked, frames) {
			// Commit failed: drop the ack (the deferred abort clears the
			// in-flight marker) so the client retries instead of trusting a
			// write that never reached disk.
			sc.resps = resps[:0]
			return
		}
		s.sendFrames(pc, raddr, akey, reqID, v2, true, frames)
	} else {
		s.sendResponses(pc, raddr, akey, reqID, v2, true, resps)
	}
	sc.resps = resps[:0]
	if sl := s.opts.SlowLog; sl != nil && len(queries) > 0 {
		sl.Observe(time.Since(start), len(queries), uint8(queries[0].Op), queries[0].Key)
	}
}

// maxResponsePayload keeps each response frame within a safe UDP datagram.
const maxResponsePayload = 60 << 10

// appendResponseFrames encodes resps split across as many datagrams as
// needed (the client reassembles by offset), appending each encoded frame to
// dst. The returned frames are freshly allocated: the reply cache retains
// them across retries.
func appendResponseFrames(dst [][]byte, reqID uint64, v2 bool, resps []proto.Response) [][]byte {
	start := 0
	for {
		end := start
		bytes := 0
		for end < len(resps) {
			rlen := 5 + len(resps[end].Value)
			if end > start && bytes+rlen > maxResponsePayload {
				break
			}
			bytes += rlen
			end++
		}
		if v2 {
			dst = append(dst, proto.EncodeResponseFrameV2(nil, reqID, start, resps[start:end]))
		} else {
			dst = append(dst, proto.EncodeResponseFrame(nil, resps[start:end]))
		}
		start = end
		if start >= len(resps) {
			return dst
		}
	}
}

// sendResponses writes resps split across as many frames as needed and, for
// cacheable v2 requests, retains the encoded frames for duplicate
// suppression. akey is the memoized raddr string (may be empty when no
// caching applies).
func (s *Server) sendResponses(pc net.PacketConn, raddr net.Addr, akey string, reqID uint64, v2, cache bool, resps []proto.Response) {
	s.sendFrames(pc, raddr, akey, reqID, v2, cache, appendResponseFrames(nil, reqID, v2, resps))
}

// sendFrames is the lower half of sendResponses for callers that already hold
// the encoded frames (the durable path encodes them before the WAL commit).
func (s *Server) sendFrames(pc net.PacketConn, raddr net.Addr, akey string, reqID uint64, v2, cache bool, frames [][]byte) {
	sendOK := true
	for _, out := range frames {
		if _, err := pc.WriteTo(out, raddr); err != nil {
			sendOK = false
			break // oversized single value or transient error: drop rest
		}
	}
	if cache && sendOK && v2 && reqID != 0 && s.replies != nil {
		if akey == "" {
			akey = s.addrs.keyFor(raddr)
		}
		s.replies.finish(akey, reqID, frames)
	}
}

// writeBusy answers a shed frame with one StatusBusy response per query so
// the client learns about the overload immediately instead of timing out.
// Busy replies are never cached: a later retry should be re-admitted.
func (s *Server) writeBusy(pc net.PacketConn, raddr net.Addr, reqID uint64, v2 bool, count int) {
	resps := make([]proto.Response, count)
	for i := range resps {
		resps[i].Status = proto.StatusBusy
	}
	s.sendResponses(pc, raddr, "", reqID, v2, false, resps)
}

// process executes one frame's queries, reusing sc's pooled response slice
// and value arena. Values are appended into sc.vals and responses reference
// subslices of it; if an append grows the arena, earlier responses keep
// pointing into the previous backing array, which remains intact — so the
// references stay valid for the lifetime of the frame.
func (s *Server) process(queries []proto.Query, sc *frameScratch) []proto.Response {
	resps := sc.resps[:0]
	sc.vals = sc.vals[:0]
	for _, q := range queries {
		switch q.Op {
		case proto.OpGet:
			if s.getInto != nil {
				mark := len(sc.vals)
				if out, ok := s.getInto.GetInto(q.Key, sc.vals); ok {
					sc.vals = out
					v := sc.vals[mark:len(sc.vals):len(sc.vals)]
					resps = append(resps, proto.Response{Status: proto.StatusOK, Value: v})
				} else {
					resps = append(resps, proto.Response{Status: proto.StatusNotFound})
				}
			} else if v, ok := s.store.Get(q.Key); ok {
				resps = append(resps, proto.Response{Status: proto.StatusOK, Value: v})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusNotFound})
			}
		case proto.OpSet:
			if err := s.store.Set(q.Key, q.Value); err != nil {
				resps = append(resps, proto.Response{Status: proto.StatusError})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusOK})
			}
		case proto.OpDelete:
			if s.store.Delete(q.Key) {
				resps = append(resps, proto.Response{Status: proto.StatusOK})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusNotFound})
			}
		}
		s.served.Inc()
	}
	return resps
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// Served returns the number of queries processed.
func (s *Server) Served() uint64 { return s.served.Load() }

// ServerStats is a snapshot of the server's serving counters. Each field is
// individually monotonic (atomically read), but the struct is not a
// consistent cut: counters keep advancing while the snapshot is assembled,
// so cross-field arithmetic (e.g. Served/Frames) is approximate under load.
type ServerStats struct {
	// Served counts queries executed; Frames counts frames executed.
	Served, Frames uint64
	// Shed counts frames rejected with StatusBusy under overload.
	Shed uint64
	// Replayed counts retried frames answered from the reply cache.
	Replayed uint64
	// DupDropped counts duplicate frames dropped while the original request
	// was still executing (at-most-once in-flight tracking).
	DupDropped uint64
	// Malformed counts dropped undecodable or corrupted frames.
	Malformed uint64
	// Panics counts frames whose processing panicked (and was contained).
	Panics uint64
	// InFlight is the number of frames currently being processed.
	InFlight int
}

// Stats returns current serving counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Served:     s.served.Load(),
		Frames:     s.frames.Load(),
		Shed:       s.shed.Load(),
		Replayed:   s.replayed.Load(),
		DupDropped: s.dupDropped.Load(),
		Malformed:  s.malformed.Load(),
		Panics:     s.panics.Load(),
		InFlight:   len(s.tokens),
	}
}

// Close stops the server. It unblocks the serve loop without tearing down
// the socket, so in-flight frames still get their responses; Serve returns
// once they have drained. Close is idempotent.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		// The serve loop notices closed, drains, and shuts the pipeline
		// runner down itself; wait for that drain so every in-flight frame
		// has committed its records before the WAL tail is sealed below.
		err := conn.SetReadDeadline(time.Now())
		<-s.drained
		if s.dur != nil {
			if derr := s.dur.close(); err == nil {
				err = derr
			}
		}
		return err
	}
	// Serve never ran (or has not published its socket yet): the pipeline
	// workers started at construction, so release them here. Serve's
	// closed re-check covers the not-yet-published race.
	if s.pipe != nil {
		s.pipe.runner.Close()
	}
	if s.dur != nil {
		return s.dur.close()
	}
	return nil
}

// replyKey identifies a request across retries: the client's address plus
// the frame's request ID.
type replyKey struct {
	addr string
	id   uint64
}

// replyCache retains the encoded response frames of recent requests so a
// retried (duplicate) frame is answered without re-execution, and tracks
// which requests are currently executing so a retry cannot race the original
// into a second execution. Eviction is FIFO over distinct requests.
type replyCache struct {
	mu       sync.Mutex
	max      int
	m        map[replyKey][][]byte
	fifo     []replyKey
	inflight map[replyKey]struct{}
}

// begin outcomes.
const (
	replyAdmitted = iota // no reply yet and not executing: caller may execute
	replyCached          // reply available: answer from the returned frames
	replyInFlight        // original still executing: drop the duplicate
)

func newReplyCache(max int) *replyCache {
	return &replyCache{
		max:      max,
		m:        make(map[replyKey][][]byte, max),
		inflight: make(map[replyKey]struct{}),
	}
}

// begin classifies an arriving (addr, id) frame. On replyAdmitted the pair is
// marked in-flight; the caller must hand it to finish or abort eventually.
func (rc *replyCache) begin(addr string, id uint64) ([][]byte, int) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if frames, ok := rc.m[k]; ok {
		return frames, replyCached
	}
	if _, ok := rc.inflight[k]; ok {
		return nil, replyInFlight
	}
	rc.inflight[k] = struct{}{}
	return nil, replyAdmitted
}

// finish records the computed reply and clears the in-flight marker in one
// step, so no retry can slip between execution and cache fill.
func (rc *replyCache) finish(addr string, id uint64, frames [][]byte) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	delete(rc.inflight, k)
	if _, ok := rc.m[k]; ok {
		rc.m[k] = frames // recomputed after cache eviction: same reply
		return
	}
	rc.m[k] = frames
	rc.fifo = append(rc.fifo, k)
	for len(rc.fifo) > rc.max {
		delete(rc.m, rc.fifo[0])
		rc.fifo = rc.fifo[1:]
	}
}

// abort clears the in-flight marker without recording a reply (shed frame,
// malformed payload, failed send, contained panic). Idempotent.
func (rc *replyCache) abort(addr string, id uint64) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	delete(rc.inflight, k)
	rc.mu.Unlock()
}

// ClientConn is the conn surface the Client drives; *net.UDPConn implements
// it, and the fault injector's wrapper does too.
type ClientConn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// ClientOptions tunes the client's fault-tolerance behavior. The zero value
// gives production defaults.
type ClientOptions struct {
	// Timeout is the per-attempt deadline for assembling a complete
	// response set. 0 means DefaultClientTimeout.
	Timeout time.Duration
	// Retries is how many times Do resends an unanswered frame before
	// giving up with ErrTimeout (or ErrBusy). 0 means
	// DefaultClientRetries; negative disables retries.
	Retries int
	// Backoff is the initial delay before the first resend; it doubles per
	// retry (±50% jitter) up to MaxBackoff. Zero values mean the defaults.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed makes the request-ID sequence and backoff jitter deterministic
	// for tests; 0 derives a seed from the clock.
	Seed int64
	// WrapConn, when set, wraps the dialed socket — the client-side hook
	// for the fault injector.
	WrapConn func(*net.UDPConn) ClientConn
}

// Defaults for ClientOptions zero fields.
const (
	DefaultClientTimeout    = 500 * time.Millisecond
	DefaultClientRetries    = 7
	DefaultClientBackoff    = 10 * time.Millisecond
	DefaultClientMaxBackoff = 320 * time.Millisecond
)

// Client is a UDP client for a Server. It batches queries per call: Do sends
// one frame and reassembles the response frames, retrying with exponential
// backoff when datagrams are lost. Client is not safe for concurrent use;
// create one per goroutine.
type Client struct {
	conn ClientConn
	opts ClientOptions
	buf  []byte
	out  []byte

	scratch []proto.Response
	nextID  uint64
	rng     *rand.Rand

	retries  stats.Counter
	timeouts stats.Counter
	busy     stats.Counter
}

// Dial connects to a server at addr with default options.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOptions{})
}

// DialOpts connects to a server at addr with the given options.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultClientTimeout
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultClientRetries
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultClientBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultClientMaxBackoff
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	var cc ClientConn = conn
	if opts.WrapConn != nil {
		cc = opts.WrapConn(conn)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Client{
		conn:   cc,
		opts:   opts,
		buf:    make([]byte, proto.MaxFrameBytes),
		rng:    rng,
		nextID: rng.Uint64() | 1, // request IDs are never 0
	}
	return c, nil
}

// Typed client errors. Do never returns partial results: on any error the
// returned responses are nil.
var (
	// ErrTimeout reports that no complete response set arrived within the
	// configured timeout and retries.
	ErrTimeout = errors.New("dido: request timed out after retries")
	// ErrBusy reports that the server shed the request under overload for
	// every attempt.
	ErrBusy = errors.New("dido: server busy")
)

// ErrShortResponse reports a response frame with fewer entries than queries.
//
// Deprecated: the v2 protocol reassembles responses by offset and retries
// missing ones; Do now returns ErrTimeout instead. Kept for API stability.
var ErrShortResponse = errors.New("dido: response frame shorter than query frame")

// ClientStats is a snapshot of the client's resilience counters. Like
// ServerStats, each field is individually monotonic but the struct is not a
// consistent cut across fields.
type ClientStats struct {
	// Retries counts frame resends (timeout- or busy-triggered).
	Retries uint64
	// Timeouts counts Do calls that failed with ErrTimeout.
	Timeouts uint64
	// BusyRounds counts attempts that were shed by the server.
	BusyRounds uint64
}

// Stats returns current client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:    c.retries.Load(),
		Timeouts:   c.timeouts.Load(),
		BusyRounds: c.busy.Load(),
	}
}

// Do sends queries as one v2 frame and returns the per-query responses, in
// query order. The server may split large response sets across several
// datagrams and the network may drop, duplicate or reorder them; Do
// reassembles by offset and resends the frame (same request ID) with
// exponential backoff until every response arrived or the retry budget is
// exhausted. Resends are idempotency-safe: the server deduplicates by
// request ID, so a SET is re-executed only if it was never acknowledged.
//
// On error the returned responses are always nil — there are no partial
// results, and returned values never alias the receive buffer. Value slices
// in successful responses are copies and remain valid after the next Do.
func (c *Client) Do(queries []proto.Query) ([]proto.Response, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	c.out = proto.EncodeFrameV2(c.out[:0], id, queries)

	resps := make([]proto.Response, len(queries))
	got := make([]bool, len(queries))
	need := len(queries)
	sawBusy := false
	backoff := c.opts.Backoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			jitter := time.Duration(c.rng.Int63n(int64(backoff))) - backoff/2
			time.Sleep(backoff + jitter)
			if backoff *= 2; backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
		}
		if _, err := c.conn.Write(c.out); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.opts.Timeout)
		sawBusy = false
		for need > 0 {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := c.conn.Read(c.buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // attempt over; maybe retry
				}
				return nil, err
			}
			rs, rid, off, perr := proto.ParseResponseFrameID(c.buf[:n], c.scratch[:0])
			c.scratch = rs[:0]
			if perr != nil || rid != id {
				continue // corrupted or stale frame: ignore it
			}
			if len(rs) > 0 && rs[0].Status == proto.StatusBusy {
				// The server shed this attempt; no more frames are coming.
				sawBusy = true
				break
			}
			for i := range rs {
				idx := off + i
				if idx < 0 || idx >= len(queries) || got[idx] {
					continue // duplicate or nonsense offset
				}
				r := rs[i]
				// Copy the value out of the receive buffer before reuse.
				if len(r.Value) > 0 {
					r.Value = append([]byte(nil), r.Value...)
				}
				resps[idx] = r
				got[idx] = true
				need--
			}
		}
		if need == 0 {
			return resps, nil
		}
		if sawBusy {
			c.busy.Inc()
		}
		if attempt >= c.opts.Retries {
			if sawBusy {
				return nil, ErrBusy
			}
			c.timeouts.Inc()
			return nil, ErrTimeout
		}
	}
}

// Get fetches one key.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	resps, err := c.Do([]proto.Query{{Op: proto.OpGet, Key: key}})
	if err != nil {
		return nil, false, err
	}
	if resps[0].Status != proto.StatusOK {
		return nil, false, nil
	}
	return resps[0].Value, true, nil
}

// Set stores one key-value pair.
func (c *Client) Set(key, value []byte) error {
	resps, err := c.Do([]proto.Query{{Op: proto.OpSet, Key: key, Value: value}})
	if err != nil {
		return err
	}
	if resps[0].Status != proto.StatusOK {
		return errors.New("dido: server rejected SET")
	}
	return nil
}

// Delete removes one key, reporting whether it existed.
func (c *Client) Delete(key []byte) (bool, error) {
	resps, err := c.Do([]proto.Query{{Op: proto.OpDelete, Key: key}})
	if err != nil {
		return false, err
	}
	return resps[0].Status == proto.StatusOK, nil
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.conn.Close() }

// Query re-exports the wire query type for clients building batches.
type Query = proto.Query

// Response re-exports the wire response type.
type Response = proto.Response

// Re-exported query ops and statuses.
const (
	OpGet          = proto.OpGet
	OpSet          = proto.OpSet
	OpDelete       = proto.OpDelete
	StatusOK       = proto.StatusOK
	StatusNotFound = proto.StatusNotFound
	StatusError    = proto.StatusError
	StatusBusy     = proto.StatusBusy
)

package dido

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/udpbatch"
)

// Backend is the store surface the server serves. *Store implements it;
// tests and the fault injector substitute their own.
type Backend interface {
	Get(key []byte) ([]byte, bool)
	Set(key, value []byte) error
	Delete(key []byte) bool
}

// GetIntoBackend is an optional Backend extension. When the backend provides
// it (as *Store does), the server serves GETs by appending values into a
// pooled per-frame buffer instead of allocating a copy per query.
type GetIntoBackend interface {
	GetInto(key, dst []byte) ([]byte, bool)
}

// ScanBackend is an optional Backend extension for range scans. When the
// backend provides it (as *Store does when built with StoreConfig.Ordered),
// the server answers SCAN queries; otherwise SCANs get StatusError. ok=false
// means the backend exists but its ordered index is disabled.
type ScanBackend interface {
	Scan(start, end []byte, limit int, fn func(key, value []byte) bool) (int, bool)
}

// ServerOptions tunes the fault-tolerance behavior of a Server. The zero
// value gives production defaults.
type ServerOptions struct {
	// MaxInFlight bounds how many frames are processed concurrently. When
	// the budget is exhausted, new frames are shed immediately with
	// StatusBusy responses instead of queuing unboundedly, keeping the
	// latency of admitted frames bounded under overload. 0 means
	// DefaultMaxInFlight.
	MaxInFlight int
	// MaxConns bounds concurrently open stream connections across all stream
	// frontends (RESP, memcached text when it shares the gate): connection-
	// scale admission, the stream analogue of MaxInFlight. 0 means
	// DefaultMaxConns; negative disables the limit.
	MaxConns int
	// RESPConnInFlight caps frames in flight per RESP connection; beyond it
	// the frontend sheds with -BUSY without consuming MaxInFlight tokens.
	// 0 means the frontend default (16); negative disables the cap.
	RESPConnInFlight int
	// ReplyCacheSize bounds how many recent request replies are retained
	// (per client address + request ID) to answer retried frames without
	// re-executing them. 0 means DefaultReplyCacheSize; negative disables
	// the cache.
	ReplyCacheSize int
	// WrapConn, when set, wraps the UDP listening socket before serving. This
	// is the hook the fault injector (internal/faults) uses.
	WrapConn func(net.PacketConn) net.PacketConn
	// WrapStreamConn, when set, wraps each accepted RESP connection — the
	// stream-side fault injector hook (stalls, corruption, torn reads).
	WrapStreamConn func(net.Conn) net.Conn
	// Pipeline, when non-nil, serves admitted frames through the batched
	// task-granular pipeline (see server_pipeline.go) instead of one
	// goroutine per frame. Admission, dedupe and at-most-once semantics are
	// identical on both paths.
	Pipeline *PipelineOptions
	// SlowLog, when non-nil, records frames whose admission→response latency
	// exceeds its threshold, on both serving paths. The below-threshold cost
	// is one clock read and an atomic compare per frame (see internal/obs).
	SlowLog *obs.SlowLog
	// Durability, when non-nil with a Dir, attaches the durability tier:
	// startup recovery from snapshot + WAL, write-ahead logging of every
	// acknowledged write on both serving paths, and periodic snapshots that
	// truncate the log (see server_durability.go). Opening it can fail (disk
	// errors, corrupt snapshot) — use NewServerDurable to observe the error.
	Durability *DurabilityOptions
	// NetQueues is how many SO_REUSEPORT ingestion queues the UDP and RESP
	// frontends shard across: per-queue sockets, reader goroutines and
	// reply senders. The kernel hashes client 4-tuples over the queues, so
	// clients must spread source sockets for the sharding to engage (see
	// dido-loadgen's -src-conns). 0/1 means one queue; platforms without
	// SO_REUSEPORT clamp to 1. Under Pipeline.Adapt the cost model sizes
	// the effective count at startup — readers are placed like any other
	// task, and a 1-CPU host gates extra readers off entirely.
	NetQueues int
}

// Defaults for ServerOptions zero fields.
const (
	DefaultMaxInFlight    = 256
	DefaultMaxConns       = 1024
	DefaultReplyCacheSize = 4096
)

// Server is the protocol-independent core of the key-value server: admission
// (frame tokens and the connection gate), at-most-once dedupe through the
// reply cache, durability commit-before-ack, and per-frame vs pipelined
// execution. Transports are frontends (internal/frontend): the batched UDP
// binary protocol (Serve), TCP/RESP2 (ServeRESP), and the memcached text
// protocol (TextServer) all feed this one core. Server implements
// frontend.Core; see the frontend package for the delivery contract.
//
// The serving path is hardened for lossy networks and overload: frames are
// processed by a bounded pool (excess load is shed with StatusBusy), v2
// request IDs deduplicate retried frames through a reply cache, a poisoned
// frame cannot kill a serve loop (per-frame recover), and Close drains
// in-flight frames before sockets are torn down.
type Server struct {
	store   Backend
	getInto GetIntoBackend // non-nil when store implements the fast GET path
	scan    ScanBackend    // non-nil when store implements range scans
	opts    ServerOptions

	mu        sync.Mutex
	fes       []frontend.Frontend    // registered, running frontends
	udpFE     *frontend.UDP          // set by Serve
	respFE    *frontend.RESP         // set by ServeRESP
	statsSrcs []frontend.StatsSource // frontends + attached stream servers
	closed    atomic.Bool

	gate *frontend.Gate // connection-scale admission, shared across streams

	// netQueues is the effective ingestion queue count: the request after
	// platform clamping and (under -adapt) cost-model sizing. Fixed before
	// any frontend listens.
	netQueues int

	pipe *serverPipeline // non-nil when opts.Pipeline is set
	dur  *durability     // non-nil when opts.Durability is set

	tokens  chan struct{}
	wg      sync.WaitGroup
	replies *replyCache
	scratch sync.Pool // *frameScratch: per-frame response/value reuse

	served     stats.Counter
	frames     stats.Counter
	shed       stats.Counter
	replayed   stats.Counter
	dupDropped stats.Counter
	malformed  stats.Counter
	panics     stats.Counter
}

// frameScratch holds the per-frame slices that are pooled across frames so
// the steady-state GET path performs no allocations: the response set and a
// flat arena the backend appends values into.
type frameScratch struct {
	resps []proto.Response
	vals  []byte
}

// NewServer returns a server over b with default options.
func NewServer(b Backend) *Server {
	return NewServerOpts(b, ServerOptions{})
}

// NewServerOpts returns a server over b with the given options. When
// opts.Durability is set, opening the tier can fail; this constructor panics
// on that error — use NewServerDurable to handle it.
func NewServerOpts(b Backend, opts ServerOptions) *Server {
	s, err := newServer(b, opts)
	if err != nil {
		panic("dido: " + err.Error() + " (use NewServerDurable)")
	}
	return s
}

// NewServerDurable returns a server over b, running startup recovery and
// opening the write-ahead log when opts.Durability is set. It is the
// error-returning form of NewServerOpts for durable servers: recovery reads
// disk state and can fail.
func NewServerDurable(b Backend, opts ServerOptions) (*Server, error) {
	return newServer(b, opts)
}

func newServer(b Backend, opts ServerOptions) (*Server, error) {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.MaxConns == 0 {
		opts.MaxConns = DefaultMaxConns
	}
	cacheSize := opts.ReplyCacheSize
	if cacheSize == 0 {
		cacheSize = DefaultReplyCacheSize
	}
	s := &Server{
		store:  b,
		opts:   opts,
		tokens: make(chan struct{}, opts.MaxInFlight),
		gate:   frontend.NewGate(opts.MaxConns),
	}
	if gi, ok := b.(GetIntoBackend); ok {
		s.getInto = gi
	}
	if sb, ok := b.(ScanBackend); ok {
		s.scan = sb
	}
	if cacheSize > 0 {
		s.replies = newReplyCache(cacheSize)
	}
	// Clamp the queue request to the platform before initPipeline: the
	// adaptive path re-sizes it with the cost model from there.
	s.netQueues = udpbatch.MaxQueues(opts.NetQueues)
	s.scratch.New = func() any { return &frameScratch{} }
	// Durability opens before the pipeline: recovery must finish before any
	// frame can execute, and initPipeline arms its LG hook only when s.dur
	// is already set.
	if opts.Durability != nil && opts.Durability.Dir != "" {
		dur, err := openDurability(b, s.replies, *opts.Durability)
		if err != nil {
			return nil, err
		}
		s.dur = dur
	}
	if opts.Pipeline != nil {
		s.initPipeline(opts.Pipeline)
	}
	return s, nil
}

// register publishes a listening frontend so Close can reach it, unless the
// server already closed (then the frontend is torn back down and false is
// returned — the caller should not Run it).
func (s *Server) register(fe frontend.Frontend) bool {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		fe.Shutdown()
		return false
	}
	s.fes = append(s.fes, fe)
	s.statsSrcs = append(s.statsSrcs, fe)
	s.mu.Unlock()
	return true
}

// Serve listens on addr (e.g. "127.0.0.1:11211") for the batched UDP binary
// protocol and processes frames until Close. It blocks; run it in a
// goroutine. Serve returns once Close has stopped frame production.
func (s *Server) Serve(addr string) error {
	fe := frontend.NewUDP(frontend.UDPOptions{
		WrapConn:     s.opts.WrapConn,
		Batched:      s.pipe != nil,
		Dedupe:       s.replies != nil,
		MeasureParse: s.pipe != nil && s.pipe.measureParse,
		StampStart:   s.opts.SlowLog != nil,
		Queues:       s.netQueues,
	})
	if err := fe.Listen(addr); err != nil {
		return err
	}
	s.mu.Lock()
	s.udpFE = fe
	s.mu.Unlock()
	if !s.register(fe) {
		return nil
	}
	return fe.Run(s)
}

// ServeRESP listens on addr (e.g. "127.0.0.1:6379") for RESP2 over TCP and
// serves it through the same core — same admission, durability and serving
// paths as the UDP frontend. It blocks; run it in a goroutine (concurrently
// with Serve when both protocols are wanted).
func (s *Server) ServeRESP(addr string) error {
	fe := frontend.NewRESP(frontend.RESPOptions{
		Gate:            s.gate,
		MaxConnInFlight: s.opts.RESPConnInFlight,
		WrapConn:        s.opts.WrapStreamConn,
		MeasureParse:    s.pipe != nil && s.pipe.measureParse,
		StampStart:      s.opts.SlowLog != nil,
		Listeners:       s.netQueues,
	})
	if err := fe.Listen(addr); err != nil {
		return err
	}
	s.mu.Lock()
	s.respFE = fe
	s.mu.Unlock()
	if !s.register(fe) {
		return nil
	}
	return fe.Run(s)
}

// --- frontend.Core ---

// Admit runs pre-parse admission: reply-cache dedupe, then the token gate.
// A retried frame whose reply was already computed is answered from the
// cache without re-executing it or consuming a token; this is what makes
// client retries of SET safe (at-most-once execution). A retry that lands
// while the original frame is still executing is dropped — admitting it
// would re-execute the SET before the reply cache is populated, reopening
// the at-most-once hole. The client simply retries again and is then
// answered from the cache.
func (s *Server) Admit(f *frontend.Frame) bool {
	if f.AKey != "" && f.ReqID != 0 && s.replies != nil {
		frames, state := s.replies.begin(f.AKey, f.ReqID)
		switch state {
		case replyCached:
			f.R.Deliver(f, frames)
			s.replayed.Inc()
			f.R.Release(f)
			return false
		case replyInFlight:
			s.dupDropped.Inc()
			f.R.Release(f)
			return false
		case replyAdmitted:
			f.Tracked = true
		}
	}
	select {
	case s.tokens <- struct{}{}:
	default:
		// Overload: shed the whole frame now rather than queuing it. Busy
		// replies are never cached: a later retry should be re-admitted.
		if f.Tracked {
			s.replies.abort(f.AKey, f.ReqID)
			f.Tracked = false
		}
		s.shed.Inc()
		f.R.Busy(f)
		f.R.Release(f)
		return false
	}
	s.wg.Add(1)
	return true
}

// Submit executes an admitted, parsed frame on the configured serving path.
func (s *Server) Submit(f *frontend.Frame) {
	s.frames.Inc()
	if len(f.Queries) == 0 {
		// Nothing to execute or log (RESP PING/COMMAND runs, empty UDP
		// frames): answer inline instead of riding a pipeline batch.
		s.finishDirect(f)
		return
	}
	if s.pipe != nil {
		s.submitPipelined(f)
		return
	}
	go s.executeFrame(f)
}

// Cancel aborts an admitted frame whose payload failed to parse.
func (s *Server) Cancel(f *frontend.Frame) {
	s.malformed.Inc()
	if f.Tracked {
		s.replies.abort(f.AKey, f.ReqID)
		f.Tracked = false
	}
	<-s.tokens
	s.wg.Done()
	f.R.Release(f)
}

// Malformed counts a frame dropped by a frontend before admission.
func (s *Server) Malformed() { s.malformed.Inc() }

// Draining reports whether Close has begun.
func (s *Server) Draining() bool { return s.closed.Load() }

// finishDirect answers a query-less admitted frame without touching the
// execution paths: encode (the frame may still carry protocol-level replies,
// e.g. RESP PING), deliver, settle dedupe state, release.
func (s *Server) finishDirect(f *frontend.Frame) {
	units := f.R.Encode(f, nil)
	ok := f.R.Deliver(f, units)
	if f.Tracked {
		if ok {
			s.replies.finish(f.AKey, f.ReqID, units)
		} else {
			s.replies.abort(f.AKey, f.ReqID)
		}
		f.Tracked = false
	}
	<-s.tokens
	s.wg.Done()
	f.R.Release(f)
}

// executeFrame processes one admitted frame in its own goroutine (the
// unpipelined serving path).
func (s *Server) executeFrame(f *frontend.Frame) {
	defer s.wg.Done()
	defer func() { <-s.tokens }()
	defer f.R.Release(f)
	if f.Tracked {
		// Clear the in-flight marker on every exit path (panic, failed
		// commit, failed send); a successful delivery clears it atomically
		// with the reply-cache fill, making this a no-op.
		defer s.replies.abort(f.AKey, f.ReqID)
	}
	sc := s.scratch.Get().(*frameScratch)
	defer s.scratch.Put(sc)
	// One poisoned frame must not kill a serve loop: the datagram client
	// times out and retries, the stream client gets in-band errors; everyone
	// else is unaffected.
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			f.R.Fail(f, "internal error")
		}
	}()
	resps := s.process(f.Queries, sc)
	units := f.R.Encode(f, resps)
	if s.dur != nil {
		// Redo-after-apply: the writes already executed; their records must
		// be durable before the ack. The response units are encoded first so
		// the REPLY record binds the exact reply the client will see.
		if !s.dur.commitFrame(f.Queries, resps, f.AKey, f.ReqID, f.Tracked, units) {
			// Commit failed: drop the ack (the deferred abort clears the
			// in-flight marker) so the client retries instead of trusting a
			// write that never reached disk.
			sc.resps = resps[:0]
			f.R.Fail(f, "wal commit failed")
			return
		}
	}
	ok := f.R.Deliver(f, units)
	if f.Tracked && ok && s.replies != nil {
		s.replies.finish(f.AKey, f.ReqID, units)
	}
	sc.resps = resps[:0]
	if sl := s.opts.SlowLog; sl != nil && len(f.Queries) > 0 {
		sl.Observe(time.Since(f.Start), len(f.Queries), uint8(f.Queries[0].Op), f.Queries[0].Key)
	}
}

// process executes one frame's queries, reusing sc's pooled response slice
// and value arena. Values are appended into sc.vals and responses reference
// subslices of it; if an append grows the arena, earlier responses keep
// pointing into the previous backing array, which remains intact — so the
// references stay valid for the lifetime of the frame.
func (s *Server) process(queries []proto.Query, sc *frameScratch) []proto.Response {
	resps := sc.resps[:0]
	sc.vals = sc.vals[:0]
	for _, q := range queries {
		switch q.Op {
		case proto.OpGet:
			if s.getInto != nil {
				mark := len(sc.vals)
				if out, ok := s.getInto.GetInto(q.Key, sc.vals); ok {
					sc.vals = out
					v := sc.vals[mark:len(sc.vals):len(sc.vals)]
					resps = append(resps, proto.Response{Status: proto.StatusOK, Value: v})
				} else {
					resps = append(resps, proto.Response{Status: proto.StatusNotFound})
				}
			} else if v, ok := s.store.Get(q.Key); ok {
				resps = append(resps, proto.Response{Status: proto.StatusOK, Value: v})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusNotFound})
			}
		case proto.OpSet:
			if err := s.store.Set(q.Key, q.Value); err != nil {
				resps = append(resps, proto.Response{Status: proto.StatusError})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusOK})
			}
		case proto.OpDelete:
			if s.store.Delete(q.Key) {
				resps = append(resps, proto.Response{Status: proto.StatusOK})
			} else {
				resps = append(resps, proto.Response{Status: proto.StatusNotFound})
			}
		case proto.OpScan:
			resps = append(resps, s.scanResponse(q, sc))
		}
		s.served.Inc()
	}
	return resps
}

// scanResponse executes one SCAN query on the per-frame path, building the
// result block in the frame's pooled value arena. SCANs on a backend without
// range scans (or with the ordered index disabled), and SCANs with a
// malformed argument, answer StatusError.
func (s *Server) scanResponse(q proto.Query, sc *frameScratch) proto.Response {
	if s.scan == nil {
		return proto.Response{Status: proto.StatusError}
	}
	limit, end, err := proto.ParseScanArg(q.Value)
	if err != nil {
		return proto.Response{Status: proto.StatusError}
	}
	blockStart := len(sc.vals)
	dst, mark := proto.BeginScanResult(sc.vals)
	entries := 0
	if _, ok := s.scan.Scan(q.Key, end, limit, func(k, v []byte) bool {
		dst = proto.AppendScanEntry(dst, k, v)
		entries++
		return len(dst)-blockStart < proto.MaxScanResultBytes
	}); !ok {
		// Ordered index disabled: sc.vals was never reassigned, so the
		// speculative header is simply never published.
		return proto.Response{Status: proto.StatusError}
	}
	proto.FinishScanResult(dst, mark, entries)
	sc.vals = dst
	return proto.Response{
		Status: proto.StatusOK,
		Value:  sc.vals[blockStart:len(sc.vals):len(sc.vals)],
	}
}

// Addr returns the UDP frontend's bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	fe := s.udpFE
	s.mu.Unlock()
	if fe == nil {
		return nil
	}
	return fe.Addr()
}

// RESPAddr returns the RESP frontend's bound address, or nil before
// ServeRESP.
func (s *Server) RESPAddr() net.Addr {
	s.mu.Lock()
	fe := s.respFE
	s.mu.Unlock()
	if fe == nil {
		return nil
	}
	return fe.Addr()
}

// ConnGate exposes the server's connection-scale admission gate so other
// stream servers (the memcached text frontend) can share its budget and
// surface their sheds in ServerStats.
func (s *Server) ConnGate() *frontend.Gate { return s.gate }

// AttachFrontendStats registers an external per-frontend stats source (e.g.
// the text server) for the /metrics frontend breakdown.
func (s *Server) AttachFrontendStats(src frontend.StatsSource) {
	s.mu.Lock()
	s.statsSrcs = append(s.statsSrcs, src)
	s.mu.Unlock()
}

// NetQueues reports the effective ingestion queue count the frontends shard
// across: the configured request after platform clamping and, under
// adaptive pipelining, cost-model sizing.
func (s *Server) NetQueues() int { return s.netQueues }

// FrontendQueueStats returns the named frontend's per-ingestion-queue
// counters, or nil when that frontend is not serving or does not shard.
// The multi-queue tests and benches use it to verify the kernel actually
// spread flows across queues.
func (s *Server) FrontendQueueStats(name string) []frontend.QueueStats {
	s.mu.Lock()
	srcs := make([]frontend.StatsSource, len(s.statsSrcs))
	copy(srcs, s.statsSrcs)
	s.mu.Unlock()
	for _, src := range srcs {
		if src.Name() != name {
			continue
		}
		if qs, ok := src.(frontend.QueueStatsSource); ok {
			return qs.QueueStats()
		}
	}
	return nil
}

// Served returns the number of queries processed.
func (s *Server) Served() uint64 { return s.served.Load() }

// ServerStats is a snapshot of the server's serving counters. Each field is
// individually monotonic (atomically read), but the struct is not a
// consistent cut: counters keep advancing while the snapshot is assembled,
// so cross-field arithmetic (e.g. Served/Frames) is approximate under load.
type ServerStats struct {
	// Served counts queries executed; Frames counts frames executed.
	Served, Frames uint64
	// Shed counts frames rejected with StatusBusy under overload.
	Shed uint64
	// Replayed counts retried frames answered from the reply cache.
	Replayed uint64
	// DupDropped counts duplicate frames dropped while the original request
	// was still executing (at-most-once in-flight tracking).
	DupDropped uint64
	// Malformed counts dropped undecodable or corrupted frames.
	Malformed uint64
	// Panics counts frames whose processing panicked (and was contained).
	Panics uint64
	// ConnsShed counts stream connections rejected over the MaxConns budget
	// (across every frontend sharing the gate).
	ConnsShed uint64
	// InFlight is the number of frames currently being processed.
	InFlight int
}

// Stats returns current serving counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Served:     s.served.Load(),
		Frames:     s.frames.Load(),
		Shed:       s.shed.Load(),
		Replayed:   s.replayed.Load(),
		DupDropped: s.dupDropped.Load(),
		Malformed:  s.malformed.Load(),
		Panics:     s.panics.Load(),
		ConnsShed:  s.gate.Shed(),
		InFlight:   len(s.tokens),
	}
}

// Close stops the server: it interrupts every frontend (no further frame can
// be admitted), drains in-flight frames so they still get their responses,
// then tears transports down. Close is idempotent.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	fes := make([]frontend.Frontend, len(s.fes))
	copy(fes, s.fes)
	s.mu.Unlock()
	// Interrupt blocks until the frontend's read loops exited, so after this
	// loop nothing can race wg.Add against the Wait below.
	for _, fe := range fes {
		fe.Interrupt()
	}
	s.wg.Wait()
	// The pipeline runner shuts down after the drain: wg.Wait needs the
	// runner still executing. Its Close is idempotent — it also runs when
	// Serve was never called.
	if s.pipe != nil {
		s.pipe.runner.Close()
	}
	for _, fe := range fes {
		fe.Shutdown()
	}
	if s.dur != nil {
		return s.dur.close()
	}
	return nil
}

// replyKey identifies a request across retries: the client's address plus
// the frame's request ID.
type replyKey struct {
	addr string
	id   uint64
}

// replyCache retains the encoded response frames of recent requests so a
// retried (duplicate) frame is answered without re-execution, and tracks
// which requests are currently executing so a retry cannot race the original
// into a second execution. Eviction is FIFO over distinct requests.
type replyCache struct {
	mu       sync.Mutex
	max      int
	m        map[replyKey][][]byte
	fifo     []replyKey
	inflight map[replyKey]struct{}
}

// begin outcomes.
const (
	replyAdmitted = iota // no reply yet and not executing: caller may execute
	replyCached          // reply available: answer from the returned frames
	replyInFlight        // original still executing: drop the duplicate
)

func newReplyCache(max int) *replyCache {
	return &replyCache{
		max:      max,
		m:        make(map[replyKey][][]byte, max),
		inflight: make(map[replyKey]struct{}),
	}
}

// begin classifies an arriving (addr, id) frame. On replyAdmitted the pair is
// marked in-flight; the caller must hand it to finish or abort eventually.
func (rc *replyCache) begin(addr string, id uint64) ([][]byte, int) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if frames, ok := rc.m[k]; ok {
		return frames, replyCached
	}
	if _, ok := rc.inflight[k]; ok {
		return nil, replyInFlight
	}
	rc.inflight[k] = struct{}{}
	return nil, replyAdmitted
}

// finish records the computed reply and clears the in-flight marker in one
// step, so no retry can slip between execution and cache fill.
func (rc *replyCache) finish(addr string, id uint64, frames [][]byte) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	delete(rc.inflight, k)
	if _, ok := rc.m[k]; ok {
		rc.m[k] = frames // recomputed after cache eviction: same reply
		return
	}
	rc.m[k] = frames
	rc.fifo = append(rc.fifo, k)
	for len(rc.fifo) > rc.max {
		delete(rc.m, rc.fifo[0])
		rc.fifo = rc.fifo[1:]
	}
}

// abort clears the in-flight marker without recording a reply (shed frame,
// malformed payload, failed send, contained panic). Idempotent.
func (rc *replyCache) abort(addr string, id uint64) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	delete(rc.inflight, k)
	rc.mu.Unlock()
}

// ClientConn is the conn surface the Client drives; *net.UDPConn implements
// it, and the fault injector's wrapper does too.
type ClientConn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// ClientOptions tunes the client's fault-tolerance behavior. The zero value
// gives production defaults.
type ClientOptions struct {
	// Timeout is the per-attempt deadline for assembling a complete
	// response set. 0 means DefaultClientTimeout.
	Timeout time.Duration
	// Retries is how many times Do resends an unanswered frame before
	// giving up with ErrTimeout (or ErrBusy). 0 means
	// DefaultClientRetries; negative disables retries.
	Retries int
	// Backoff is the initial delay before the first resend; it doubles per
	// retry (±50% jitter) up to MaxBackoff. Zero values mean the defaults.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed makes the request-ID sequence and backoff jitter deterministic
	// for tests; 0 derives a seed from the clock.
	Seed int64
	// WrapConn, when set, wraps the dialed socket — the client-side hook
	// for the fault injector.
	WrapConn func(*net.UDPConn) ClientConn
}

// Defaults for ClientOptions zero fields.
const (
	DefaultClientTimeout    = 500 * time.Millisecond
	DefaultClientRetries    = 7
	DefaultClientBackoff    = 10 * time.Millisecond
	DefaultClientMaxBackoff = 320 * time.Millisecond
)

// Client is a UDP client for a Server. It batches queries per call: Do sends
// one frame and reassembles the response frames, retrying with exponential
// backoff when datagrams are lost. Client is not safe for concurrent use;
// create one per goroutine.
type Client struct {
	conn ClientConn
	opts ClientOptions
	buf  []byte
	out  []byte

	scratch []proto.Response
	nextID  uint64
	rng     *rand.Rand

	retries  stats.Counter
	timeouts stats.Counter
	busy     stats.Counter
}

// Dial connects to a server at addr with default options.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOptions{})
}

// DialOpts connects to a server at addr with the given options.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultClientTimeout
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultClientRetries
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultClientBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultClientMaxBackoff
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	var cc ClientConn = conn
	if opts.WrapConn != nil {
		cc = opts.WrapConn(conn)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Client{
		conn:   cc,
		opts:   opts,
		buf:    make([]byte, proto.MaxFrameBytes),
		rng:    rng,
		nextID: rng.Uint64() | 1, // request IDs are never 0
	}
	return c, nil
}

// Typed client errors. Do never returns partial results: on any error the
// returned responses are nil.
var (
	// ErrTimeout reports that no complete response set arrived within the
	// configured timeout and retries.
	ErrTimeout = errors.New("dido: request timed out after retries")
	// ErrBusy reports that the server shed the request under overload for
	// every attempt.
	ErrBusy = errors.New("dido: server busy")
)

// ErrShortResponse reports a response frame with fewer entries than queries.
//
// Deprecated: the v2 protocol reassembles responses by offset and retries
// missing ones; Do now returns ErrTimeout instead. Kept for API stability.
var ErrShortResponse = errors.New("dido: response frame shorter than query frame")

// ClientStats is a snapshot of the client's resilience counters. Like
// ServerStats, each field is individually monotonic but the struct is not a
// consistent cut across fields.
type ClientStats struct {
	// Retries counts frame resends (timeout- or busy-triggered).
	Retries uint64
	// Timeouts counts Do calls that failed with ErrTimeout.
	Timeouts uint64
	// BusyRounds counts attempts that were shed by the server.
	BusyRounds uint64
}

// Stats returns current client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:    c.retries.Load(),
		Timeouts:   c.timeouts.Load(),
		BusyRounds: c.busy.Load(),
	}
}

// Do sends queries as one v2 frame and returns the per-query responses, in
// query order. The server may split large response sets across several
// datagrams and the network may drop, duplicate or reorder them; Do
// reassembles by offset and resends the frame (same request ID) with
// exponential backoff until every response arrived or the retry budget is
// exhausted. Resends are idempotency-safe: the server deduplicates by
// request ID, so a SET is re-executed only if it was never acknowledged.
//
// On error the returned responses are always nil — there are no partial
// results, and returned values never alias the receive buffer. Value slices
// in successful responses are copies and remain valid after the next Do.
func (c *Client) Do(queries []proto.Query) ([]proto.Response, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	id := c.nextID
	c.nextID++
	if c.nextID == 0 {
		c.nextID = 1
	}
	c.out = proto.EncodeFrameV2(c.out[:0], id, queries)

	resps := make([]proto.Response, len(queries))
	got := make([]bool, len(queries))
	need := len(queries)
	sawBusy := false
	backoff := c.opts.Backoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			jitter := time.Duration(c.rng.Int63n(int64(backoff))) - backoff/2
			time.Sleep(backoff + jitter)
			if backoff *= 2; backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
		}
		if _, err := c.conn.Write(c.out); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.opts.Timeout)
		sawBusy = false
		for need > 0 {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := c.conn.Read(c.buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // attempt over; maybe retry
				}
				return nil, err
			}
			rs, rid, off, perr := proto.ParseResponseFrameID(c.buf[:n], c.scratch[:0])
			c.scratch = rs[:0]
			if perr != nil || rid != id {
				continue // corrupted or stale frame: ignore it
			}
			if len(rs) > 0 && rs[0].Status == proto.StatusBusy {
				// The server shed this attempt; no more frames are coming.
				sawBusy = true
				break
			}
			for i := range rs {
				idx := off + i
				if idx < 0 || idx >= len(queries) || got[idx] {
					continue // duplicate or nonsense offset
				}
				r := rs[i]
				// Copy the value out of the receive buffer before reuse.
				if len(r.Value) > 0 {
					r.Value = append([]byte(nil), r.Value...)
				}
				resps[idx] = r
				got[idx] = true
				need--
			}
		}
		if need == 0 {
			return resps, nil
		}
		if sawBusy {
			c.busy.Inc()
		}
		if attempt >= c.opts.Retries {
			if sawBusy {
				return nil, ErrBusy
			}
			c.timeouts.Inc()
			return nil, ErrTimeout
		}
	}
}

// Get fetches one key.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	resps, err := c.Do([]proto.Query{{Op: proto.OpGet, Key: key}})
	if err != nil {
		return nil, false, err
	}
	if resps[0].Status != proto.StatusOK {
		return nil, false, nil
	}
	return resps[0].Value, true, nil
}

// Set stores one key-value pair.
func (c *Client) Set(key, value []byte) error {
	resps, err := c.Do([]proto.Query{{Op: proto.OpSet, Key: key, Value: value}})
	if err != nil {
		return err
	}
	if resps[0].Status != proto.StatusOK {
		return errors.New("dido: server rejected SET")
	}
	return nil
}

// Delete removes one key, reporting whether it existed.
func (c *Client) Delete(key []byte) (bool, error) {
	resps, err := c.Do([]proto.Query{{Op: proto.OpDelete, Key: key}})
	if err != nil {
		return false, err
	}
	return resps[0].Status == proto.StatusOK, nil
}

// Scan fetches up to limit entries with key in [start, end) in ascending key
// order (limit <= 0 means the server default; the server clamps oversized
// limits and truncates oversized result blocks — paginate by re-issuing with
// start = last key + one zero byte). It fails when the server's store has no
// ordered index.
func (c *Client) Scan(start, end []byte, limit int) ([]ScanEntry, error) {
	resps, err := c.Do([]proto.Query{proto.ScanQuery(start, end, limit)})
	if err != nil {
		return nil, err
	}
	if resps[0].Status != proto.StatusOK {
		return nil, errors.New("dido: server rejected SCAN")
	}
	return proto.ParseScanResult(resps[0].Value)
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.conn.Close() }

// Query re-exports the wire query type for clients building batches.
type Query = proto.Query

// Response re-exports the wire response type.
type Response = proto.Response

// ScanEntry re-exports one decoded SCAN result entry.
type ScanEntry = proto.ScanEntry

// Op and Status re-export the wire enums alongside their constants below.
type (
	Op     = proto.Op
	Status = proto.Status
)

// Re-exported query ops and statuses.
const (
	OpGet          = proto.OpGet
	OpSet          = proto.OpSet
	OpDelete       = proto.OpDelete
	OpScan         = proto.OpScan
	StatusOK       = proto.StatusOK
	StatusNotFound = proto.StatusNotFound
	StatusError    = proto.StatusError
	StatusBusy     = proto.StatusBusy
)

package dido

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsDuringServing hammers Stats() (and the pipeline stats accessors)
// from several goroutines while the server is actively serving, on both
// serving paths. Run under -race this pins that snapshotting is safe against
// concurrent counter updates; it also checks the documented per-field
// monotonicity (Served never goes backwards across snapshots).
func TestStatsDuringServing(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
			opts := ServerOptions{}
			if pipelined {
				opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
			}
			srv := NewServerOpts(st, opts)
			addr, errc := startServer(t, srv)
			defer srv.Close()

			var stop atomic.Bool
			var wg sync.WaitGroup

			// Stats readers.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastServed uint64
					for !stop.Load() {
						ss := srv.Stats()
						if ss.Served < lastServed {
							t.Errorf("Served went backwards: %d → %d", lastServed, ss.Served)
							return
						}
						lastServed = ss.Served
						srv.PipelineStats()
						srv.PipelineStageQuantiles(0.5, 0.99)
						srv.PipelineReplans()
					}
				}()
			}

			// Traffic.
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 64; i++ {
				key := []byte(fmt.Sprintf("s%d", i%32))
				if i%4 == 0 {
					if err := c.Set(key, []byte("v")); err != nil {
						t.Fatal(err)
					}
				} else if _, _, err := c.Get(key); err != nil {
					t.Fatal(err)
				}
			}
			stop.Store(true)
			wg.Wait()

			if ss := srv.Stats(); ss.Served == 0 {
				t.Fatalf("no queries served: %+v", ss)
			}
			srv.Close()
			waitServe(t, errc)
		})
	}
}

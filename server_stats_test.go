package dido

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatsDuringServing hammers Stats() (and the pipeline stats accessors)
// from several goroutines while the server is actively serving, on both
// serving paths. Run under -race this pins that snapshotting is safe against
// concurrent counter updates; it also checks the documented per-field
// monotonicity (Served never goes backwards across snapshots).
func TestStatsDuringServing(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
			opts := ServerOptions{}
			if pipelined {
				opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
			}
			srv := NewServerOpts(st, opts)
			addr, errc := startServer(t, srv)
			defer srv.Close()

			var stop atomic.Bool
			var wg sync.WaitGroup

			// Stats readers.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastServed uint64
					for !stop.Load() {
						ss := srv.Stats()
						if ss.Served < lastServed {
							t.Errorf("Served went backwards: %d → %d", lastServed, ss.Served)
							return
						}
						lastServed = ss.Served
						srv.PipelineStats()
						srv.PipelineStageQuantiles(0.5, 0.99)
						srv.PipelineReplans()
					}
				}()
			}

			// Traffic.
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 64; i++ {
				key := []byte(fmt.Sprintf("s%d", i%32))
				if i%4 == 0 {
					if err := c.Set(key, []byte("v")); err != nil {
						t.Fatal(err)
					}
				} else if _, _, err := c.Get(key); err != nil {
					t.Fatal(err)
				}
			}
			stop.Store(true)
			wg.Wait()

			if ss := srv.Stats(); ss.Served == 0 {
				t.Fatalf("no queries served: %+v", ss)
			}
			srv.Close()
			waitServe(t, errc)
		})
	}
}

// parseExposition parses Prometheus text format into sample name (with
// labels) → value. Comment lines are skipped.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// dumpToMetricName maps each key of the ServerStats dump line to its
// /metrics sample name. Adding a ServerStats field means extending both
// renderers and this table — the parity test below fails otherwise.
var dumpToMetricName = map[string]string{
	"served":      "dido_served_queries_total",
	"frames":      "dido_frames_total",
	"shed":        "dido_shed_frames_total",
	"replayed":    "dido_replayed_frames_total",
	"dup-dropped": "dido_dup_dropped_frames_total",
	"malformed":   "dido_malformed_frames_total",
	"panics":      "dido_panics_total",
	"conns-shed":  "dido_shed_conns_total",
	"inflight":    "dido_inflight_frames",
}

// TestStatsDumpMetricsParity pins that the human dump line and the Prometheus
// exposition render identical values when fed the same ServerStats snapshot —
// the two surfaces cannot drift apart.
func TestStatsDumpMetricsParity(t *testing.T) {
	ss := ServerStats{
		Served: 101, Frames: 23, Shed: 7, Replayed: 5,
		DupDropped: 3, Malformed: 2, Panics: 1, ConnsShed: 6, InFlight: 4,
	}
	w := obs.NewMetricsWriter()
	writeServerMetrics(w, ss)
	metrics := parseExposition(t, w.String())

	dumped := 0
	for _, field := range strings.Fields(ss.String()) {
		k, vs, ok := strings.Cut(field, "=")
		if !ok {
			t.Fatalf("dump field %q not key=value", field)
		}
		name, ok := dumpToMetricName[k]
		if !ok {
			t.Fatalf("dump key %q has no /metrics mapping", k)
		}
		v, err := strconv.ParseFloat(vs, 64)
		if err != nil {
			t.Fatalf("dump value %q: %v", field, err)
		}
		mv, ok := metrics[name]
		if !ok {
			t.Fatalf("metric %s missing from exposition:\n%s", name, w.String())
		}
		if mv != v {
			t.Fatalf("%s: dump says %v, /metrics says %v", k, v, mv)
		}
		dumped++
	}
	if dumped != len(dumpToMetricName) {
		t.Fatalf("dump line has %d fields, mapping table has %d", dumped, len(dumpToMetricName))
	}
}

// TestStatsDumpMetricsParityLive repeats the parity check against a serving
// server: one Stats() snapshot rendered through both surfaces mid-traffic.
func TestStatsDumpMetricsParityLive(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv := NewServerOpts(st, ServerOptions{})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 32; i++ {
		if err := c.Set([]byte(fmt.Sprintf("p%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	ss := srv.Stats()
	w := obs.NewMetricsWriter()
	writeServerMetrics(w, ss)
	metrics := parseExposition(t, w.String())
	for _, field := range strings.Fields(ss.String()) {
		k, vs, _ := strings.Cut(field, "=")
		v, _ := strconv.ParseFloat(vs, 64)
		if mv := metrics[dumpToMetricName[k]]; mv != v {
			t.Fatalf("%s: dump %v, /metrics %v (same snapshot)", k, v, mv)
		}
	}
	if ss.Served == 0 {
		t.Fatal("no traffic reached the snapshot")
	}
	srv.Close()
	waitServe(t, errc)
}

// TestCollectMetricsNames pins the full metric-name surface of a pipelined
// adaptive server + store — renames or removals break dashboards, so they
// must be deliberate.
func TestCollectMetricsNames(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv := NewServerOpts(st, ServerOptions{
		Pipeline: &PipelineOptions{BatchInterval: 200 * time.Microsecond, Adapt: true},
	})
	addr, errc := startServer(t, srv)
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	w := obs.NewMetricsWriter()
	srv.CollectMetrics(w)
	st.CollectMetrics(w)
	got := w.String()
	for _, name := range []string{
		"dido_served_queries_total", "dido_frames_total", "dido_shed_frames_total",
		"dido_replayed_frames_total", "dido_dup_dropped_frames_total",
		"dido_malformed_frames_total", "dido_panics_total", "dido_shed_conns_total",
		"dido_inflight_frames",
		`dido_frontend_frames_total{frontend="udp"}`,
		`dido_frontend_malformed_total{frontend="udp"}`,
		`dido_frontend_bytes_in_total{frontend="udp"}`,
		`dido_frontend_bytes_out_total{frontend="udp"}`,
		`dido_frontend_conns_accepted_total{frontend="udp"}`,
		`dido_frontend_conns_shed_total{frontend="udp"}`,
		`dido_frontend_conns_active{frontend="udp"}`,
		`dido_frontend_send_errors_total{frontend="udp"}`,
		`dido_frontend_queues{frontend="udp"}`,
		"dido_pipeline_batches_total", "dido_pipeline_queries_total",
		"dido_pipeline_wide_batches_total", "dido_pipeline_reconfigs_total",
		"dido_pipeline_submit_shed_total", "dido_pipeline_panics_total",
		"dido_pipeline_steal_batches_total", "dido_pipeline_stolen_chunks_total",
		"dido_pipeline_stolen_queries_total",
		"dido_pipeline_batch_target", "dido_pipeline_replans_total",
		`dido_pipeline_stage_micros{stage="1",quantile="0.5"}`,
		`dido_pipeline_stage_micros{stage="3",quantile="0.999"}`,
		"dido_store_gets_total", "dido_store_sets_total", "dido_store_deletes_total",
		"dido_store_hits_total", "dido_store_misses_total", "dido_store_evictions_total",
		"dido_store_hot_hits_total",
		"dido_scan_requests_total", "dido_scan_entries_total",
		"dido_scan_bytes_total", "dido_scan_fallbacks_total",
		"dido_store_live_objects", "dido_store_ordered_keys",
		"dido_store_index_load_factor",
	} {
		if !strings.Contains(got, name) {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	srv.Close()
	waitServe(t, errc)
}

#!/usr/bin/env bash
# check.sh — the repo's CI gate: vet, build, race-enabled tests, and a short
# protocol-parser fuzz smoke.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzz duration (default 10s; "0" skips fuzzing)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

if [ "$FUZZTIME" != "0" ]; then
    echo "== fuzz smoke ($FUZZTIME per target) =="
    go test -run='^$' -fuzz=FuzzParseFrame -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzParseResponseFrame -fuzztime="$FUZZTIME" ./internal/proto
fi

echo "== check.sh: all green =="

#!/usr/bin/env bash
# check.sh — the repo's CI gate: vet, build, race-enabled tests, a focused
# concurrency pass over the store/slab read path, a benchmark smoke, and a
# short protocol-parser fuzz smoke.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzz duration (default 10s; "0" skips fuzzing)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# The simulation figure suite (internal/bench) legitimately needs >10min
# under the race detector on small machines; raise the per-package timeout.
# -shuffle=on randomizes test order so inter-test state dependencies cannot
# hide (the seed is printed on failure for reproduction).
echo "== go test -race -shuffle=on =="
go test -race -shuffle=on -timeout 1800s ./...

# The seqlock read path and eviction stress live here; run them un-cached so
# every CI pass exercises the concurrency machinery (incl. the -race pass on
# TestConcurrentEvictionStress).
echo "== store/slab concurrency (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/store ./internal/slab

# The live batched pipeline (stage workers, online reconfiguration, batched
# UDP send/recv) is the other concurrency-heavy surface; run it un-cached
# under the race detector every pass too.
echo "== pipeline concurrency (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/pipeline ./internal/costmodel ./internal/udpbatch

# The observability layer is scraped concurrently with serving (trace ring and
# slow log appended from the hot path, read from HTTP handlers); run it
# un-cached under the race detector every pass, plus the root-package chaos
# e2e that scrapes the admin endpoint mid-traffic.
echo "== observability (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/obs
go test -count=1 -race -timeout 900s -run 'AdminUnderChaos|SlowLogOn|SlowLogThreshold|StatsDumpMetrics|CollectMetricsNames|ControllerTrace' \
    . ./internal/costmodel

# The live steal path + hot-key fast path: the chunk-claim equivalence suite
# (chunked vs fixed execution must produce identical responses), the stage-1
# idle-seal race regressions, the controller's Eq-3 steal gating, and the
# hot-table promotion/invalidation protocol incl. its staleness hammer — all
# lock-free machinery, so un-cached and race-enabled every pass.
echo "== steal + hot-key path (-race, -count=1) =="
go test -count=1 -race -timeout 900s \
    -run 'LiveSteal|LiveIdleSeal|LiveTrySealIdle|ControllerSteal|HotKey|WorkStealing' \
    ./internal/pipeline ./internal/costmodel ./internal/store

# The wide batched index path: cross-check SearchBatch/GetBatch against the
# scalar search under concurrent churn (the amortized version-check fallback),
# un-cached and race-enabled every pass.
echo "== wide batch path (-race, -count=1) =="
go test -count=1 -race -timeout 900s \
    -run 'SearchBatch|GetBatch|ReadCandidatesBatch|BatchPath|LiveWide|PipelinedWidePath' \
    ./internal/cuckoo ./internal/store ./internal/pipeline .

# The durability tier: group-commit WAL, snapshot/truncate, disk fault
# injection, and the kill -9 crash-recovery e2e (re-exec + SIGKILL mid-load,
# then verify every acked SET survived). Commit-before-ack runs concurrently
# with serving on both paths, so all of it goes under the race detector,
# un-cached every pass.
echo "== durability (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/wal ./internal/snapshot ./internal/faults
go test -count=1 -race -timeout 900s -run 'TestDurable|TestCrash' .

# The MVCC ordered index + range-scan path: the COW LLRB's snapshot/writer
# concurrency, the store's write-path tree reconciliation (resolve-under-lock
# against the cuckoo index, incl. eviction-victim retirement), the
# scan-vs-model equivalence and torn/reclaimed-value suites over the seqlock
# slab, and the root-package scan e2e + chaos pins — snapshot isolation is
# exactly the kind of guarantee only the race detector keeps honest, so
# un-cached and race-enabled every pass.
echo "== ordered index + scan path (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/ordered
go test -count=1 -race -timeout 900s \
    -run 'Scan|Ordered|SnapshotIsolation' \
    ./internal/store ./internal/pipeline ./internal/task .

# The transport front ends: RESP parser/framer unit + fuzz corpus, command-run
# sealing, per-connection ordered dispatch, reply sequencing, and the
# root-package RESP e2e (faulty conns, per-conn caps, the shared stream gate
# with the text server) — all socket-facing concurrency, so un-cached under
# the race detector every pass.
echo "== frontend (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/frontend
go test -count=1 -race -timeout 900s -run 'TestServeRESP|TestTextServerSharedGate' .

# The sharded ingestion tier: SO_REUSEPORT listen helpers and kernel spread,
# the multi-queue UDP frontend (per-queue readers/senders/addr caches,
# cross-queue dedupe keys), the cost model's reader-parallelism sizing, and
# the root-package multi-queue chaos/durability/drain e2e — per-queue readers
# run concurrently against one core, so all of it goes under the race
# detector, un-cached every pass.
echo "== ingestion queues (-race, -count=1) =="
go test -count=1 -race -timeout 900s -run 'ReusePort|ListenUDPQueues|ListenTCPQueues|MaxQueues' ./internal/udpbatch
go test -count=1 -race -timeout 900s -run 'Queue' ./internal/frontend
go test -count=1 -race -timeout 900s -run 'MultiQueue|SizeReaders|RVReaders' . ./internal/costmodel

# Benchmark smoke: one iteration each, just proving the benchmarks still
# compile and run (allocation regressions show up in the full bench runs).
echo "== benchmark smoke =="
go test -run='^$' -bench=. -benchtime=1x ./internal/store ./internal/slab ./internal/cuckoo

# Batched-search bench smoke: a short real run (not 1x) of the wide-vs-scalar
# comparison, proving the wide path executes end-to-end at several batch
# sizes and stays allocation-free (the -benchtime=8x run is long enough for
# the alloc columns to be meaningful, short enough for CI).
echo "== batched-search bench smoke =="
go test -run='^$' -bench='BenchmarkSearchBatch' -benchtime=8x ./internal/store

# End-to-end smoke of the real binaries on the batched pipeline path: a
# dido-server with -pipeline on -adapt and the admin endpoint serving a short
# dido-loadgen run must finish with zero errors, and the loadgen's
# -scrape-assert mode audits the admin surface (monotonic counters, valid
# /config and /trace JSON) as part of the same run.
echo "== pipelined server/loadgen smoke (admin scrape asserted) =="
SMOKE_DIR="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
go build -o "$SMOKE_DIR/dido-server" ./cmd/dido-server
go build -o "$SMOKE_DIR/dido-loadgen" ./cmd/dido-loadgen
SMOKE_ADDR="127.0.0.1:13311"
SMOKE_ADMIN="127.0.0.1:13390"
"$SMOKE_DIR/dido-server" -addr "$SMOKE_ADDR" -pipeline on -adapt -net-queues 4 -stats-interval 0 \
    -admin "$SMOKE_ADMIN" -slow-query 1ms &
SERVER_PID=$!
sleep 0.3
"$SMOKE_DIR/dido-loadgen" -addr "$SMOKE_ADDR" -workload K16-G95-S -duration 2s -population 10000 \
    -src-conns 4 -scan-ratio 0.05 -scrape "http://$SMOKE_ADMIN" -scrape-assert
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# Same smoke with the durability tier on: a -wal server serving a write-bearing
# run, with the loadgen's scrape audit asserting the WAL counters advanced
# (dido_wal_records_total / dido_wal_bytes_total non-zero, all counters
# monotonic). The server restarts once from the same directory so startup
# recovery runs against a real WAL+snapshot left by SIGTERM drain.
echo "== durable server/loadgen smoke (WAL scrape asserted) =="
WAL_ADDR="127.0.0.1:13312"
WAL_ADMIN="127.0.0.1:13391"
"$SMOKE_DIR/dido-server" -addr "$WAL_ADDR" -stats-interval 0 \
    -wal "$SMOKE_DIR/wal" -snapshot-interval 1s -admin "$WAL_ADMIN" &
SERVER_PID=$!
sleep 0.3
"$SMOKE_DIR/dido-loadgen" -addr "$WAL_ADDR" -workload K16-G50-S -duration 2s -population 10000 \
    -scrape "http://$WAL_ADMIN" -scrape-assert
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
"$SMOKE_DIR/dido-server" -addr "$WAL_ADDR" -stats-interval 0 \
    -wal "$SMOKE_DIR/wal" -admin "$WAL_ADMIN" &
SERVER_PID=$!
sleep 0.3
"$SMOKE_DIR/dido-loadgen" -addr "$WAL_ADDR" -workload K16-G95-U -duration 1s -population 1000 \
    -warm=false -scrape "http://$WAL_ADMIN" -scrape-assert
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# RESP front-end smoke with the durability contract: a -resp -wal server takes
# a warmed write-bearing run over TCP/RESP, is killed with SIGKILL (no drain),
# restarts from the same directory, and an unwarmed GET-only pass over the
# same deterministic keyspace must hit ≥99% — acked RESP SETs survive kill -9.
echo "== RESP smoke (kill -9 recovery of acked SETs) =="
RESP_UDP="127.0.0.1:13313"
RESP_ADDR="127.0.0.1:13314"
"$SMOKE_DIR/dido-server" -addr "$RESP_UDP" -resp "$RESP_ADDR" -stats-interval 0 \
    -wal "$SMOKE_DIR/respwal" &
SERVER_PID=$!
sleep 0.3
"$SMOKE_DIR/dido-loadgen" -addr "$RESP_ADDR" -resp -workload K16-G50-S -duration 1s \
    -population 5000
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
"$SMOKE_DIR/dido-server" -addr "$RESP_UDP" -resp "$RESP_ADDR" -stats-interval 0 \
    -wal "$SMOKE_DIR/respwal" &
SERVER_PID=$!
sleep 0.3
"$SMOKE_DIR/dido-loadgen" -addr "$RESP_ADDR" -resp -workload K16-G100-U -duration 1s \
    -population 5000 -warm=false -assert-min-hit-rate 0.99
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

if [ "$FUZZTIME" != "0" ]; then
    echo "== fuzz smoke ($FUZZTIME per target) =="
    go test -run='^$' -fuzz=FuzzParseFrame -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzParseResponseFrame -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzScanOpcode -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzOrderedTree -fuzztime="$FUZZTIME" ./internal/ordered
    go test -run='^$' -fuzz=FuzzSearchBatchMatchesSearchBuf -fuzztime="$FUZZTIME" ./internal/cuckoo
    go test -run='^$' -fuzz=FuzzWALReplay -fuzztime="$FUZZTIME" ./internal/wal
    go test -run='^$' -fuzz=FuzzRESPParse -fuzztime="$FUZZTIME" ./internal/frontend
fi

echo "== check.sh: all green =="

#!/usr/bin/env bash
# check.sh — the repo's CI gate: vet, build, race-enabled tests, a focused
# concurrency pass over the store/slab read path, a benchmark smoke, and a
# short protocol-parser fuzz smoke.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzz duration (default 10s; "0" skips fuzzing)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# The simulation figure suite (internal/bench) legitimately needs >10min
# under the race detector on small machines; raise the per-package timeout.
echo "== go test -race =="
go test -race -timeout 1800s ./...

# The seqlock read path and eviction stress live here; run them un-cached so
# every CI pass exercises the concurrency machinery (incl. the -race pass on
# TestConcurrentEvictionStress).
echo "== store/slab concurrency (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/store ./internal/slab

# Benchmark smoke: one iteration each, just proving the benchmarks still
# compile and run (allocation regressions show up in the full bench runs).
echo "== benchmark smoke =="
go test -run='^$' -bench=. -benchtime=1x ./internal/store ./internal/slab ./internal/cuckoo

if [ "$FUZZTIME" != "0" ]; then
    echo "== fuzz smoke ($FUZZTIME per target) =="
    go test -run='^$' -fuzz=FuzzParseFrame -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzParseResponseFrame -fuzztime="$FUZZTIME" ./internal/proto
fi

echo "== check.sh: all green =="

#!/usr/bin/env bash
# check.sh — the repo's CI gate: vet, build, race-enabled tests, a focused
# concurrency pass over the store/slab read path, a benchmark smoke, and a
# short protocol-parser fuzz smoke.
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzz duration (default 10s; "0" skips fuzzing)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# The simulation figure suite (internal/bench) legitimately needs >10min
# under the race detector on small machines; raise the per-package timeout.
echo "== go test -race =="
go test -race -timeout 1800s ./...

# The seqlock read path and eviction stress live here; run them un-cached so
# every CI pass exercises the concurrency machinery (incl. the -race pass on
# TestConcurrentEvictionStress).
echo "== store/slab concurrency (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/store ./internal/slab

# The live batched pipeline (stage workers, online reconfiguration, batched
# UDP send/recv) is the other concurrency-heavy surface; run it un-cached
# under the race detector every pass too.
echo "== pipeline concurrency (-race, -count=1) =="
go test -count=1 -race -timeout 900s ./internal/pipeline ./internal/costmodel ./internal/udpbatch

# The wide batched index path: cross-check SearchBatch/GetBatch against the
# scalar search under concurrent churn (the amortized version-check fallback),
# un-cached and race-enabled every pass.
echo "== wide batch path (-race, -count=1) =="
go test -count=1 -race -timeout 900s \
    -run 'SearchBatch|GetBatch|ReadCandidatesBatch|BatchPath|LiveWide|PipelinedWidePath' \
    ./internal/cuckoo ./internal/store ./internal/pipeline .

# Benchmark smoke: one iteration each, just proving the benchmarks still
# compile and run (allocation regressions show up in the full bench runs).
echo "== benchmark smoke =="
go test -run='^$' -bench=. -benchtime=1x ./internal/store ./internal/slab ./internal/cuckoo

# Batched-search bench smoke: a short real run (not 1x) of the wide-vs-scalar
# comparison, proving the wide path executes end-to-end at several batch
# sizes and stays allocation-free (the -benchtime=8x run is long enough for
# the alloc columns to be meaningful, short enough for CI).
echo "== batched-search bench smoke =="
go test -run='^$' -bench='BenchmarkSearchBatch' -benchtime=8x ./internal/store

# End-to-end smoke of the real binaries on the batched pipeline path: a
# dido-server with -pipeline on -adapt serving a short dido-loadgen run must
# finish with zero errors (proves the pipelined serving path works outside
# the test harness, CLI flags included).
echo "== pipelined server/loadgen smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
go build -o "$SMOKE_DIR/dido-server" ./cmd/dido-server
go build -o "$SMOKE_DIR/dido-loadgen" ./cmd/dido-loadgen
SMOKE_ADDR="127.0.0.1:13311"
"$SMOKE_DIR/dido-server" -addr "$SMOKE_ADDR" -pipeline on -adapt -stats-interval 0 &
SERVER_PID=$!
sleep 0.3
"$SMOKE_DIR/dido-loadgen" -addr "$SMOKE_ADDR" -workload K16-G95-S -duration 2s -population 10000
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

if [ "$FUZZTIME" != "0" ]; then
    echo "== fuzz smoke ($FUZZTIME per target) =="
    go test -run='^$' -fuzz=FuzzParseFrame -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzParseResponseFrame -fuzztime="$FUZZTIME" ./internal/proto
    go test -run='^$' -fuzz=FuzzSearchBatchMatchesSearchBuf -fuzztime="$FUZZTIME" ./internal/cuckoo
fi

echo "== check.sh: all green =="

#!/usr/bin/env bash
# bench.sh — the serving-path A/B behind the work-stealing + hot-key PR:
# zipf(0.99) saturation with stealing off/on and the hot-key table off/on,
# plus the uniform control where -adapt -steal should keep stealing gated
# off. Echoes the raw `go test -bench` output and distills it into a
# machine-readable BENCH_7.json (CI uploads it as a non-blocking artifact —
# shared runners are far too noisy for benchmark numbers to gate merges).
#
# Usage: scripts/bench.sh [out.json]
#   BENCHTIME=3s scripts/bench.sh    # per-benchmark duration (default 3s)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_7.json}"
BENCHTIME="${BENCHTIME:-3s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkServe(Zipf|Uniform)' \
    -benchtime "$BENCHTIME" -count 1 -timeout 1200s . | tee "$RAW"

awk -v host_cpus="$(nproc)" \
    -v go_version="$(go version | awk '{print $3}')" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v benchtime="$BENCHTIME" '
# Result lines carry the metrics; the --- BENCH: block that follows carries
# the b.Logf diagnostics of every retry run — last occurrence wins, which is
# the final (longest, reported) run.
/^BenchmarkServe/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    order[++n] = name
    ns[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "kqops")       kqops[name] = $i
        if ($(i+1) == "tmax_p99_us") tmax[name]  = $i
    }
}
/^--- BENCH: / { cur = $3; sub(/-[0-9]+$/, "", cur) }
cur != "" && match($0, /steal\[batches=[0-9]+ chunks=[0-9]+ queries=[0-9]+\]/) {
    s = substr($0, RSTART, RLENGTH)
    if (match(s, /batches=[0-9]+/))  sb[cur] = substr(s, RSTART+8, RLENGTH-8)
    if (match(s, /chunks=[0-9]+/))   sc[cur] = substr(s, RSTART+7, RLENGTH-7)
    if (match(s, /queries=[0-9]+/))  sq[cur] = substr(s, RSTART+8, RLENGTH-8)
}
cur != "" && match($0, /hot=[0-9]+ of gets=[0-9]+/) {
    s = substr($0, RSTART, RLENGTH)
    if (match(s, /hot=[0-9]+/))  hh[cur] = substr(s, RSTART+4, RLENGTH-4)
    if (match(s, /gets=[0-9]+/)) hg[cur] = substr(s, RSTART+5, RLENGTH-5)
}
END {
    printf "{\n"
    printf "  \"issue\": 7,\n"
    printf "  \"bench\": \"serving A/B: work stealing + hot-key fast path under zipf(0.99)\",\n"
    printf "  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", go_version, commit
    printf "  \"host_cpus\": %s,\n  \"benchtime\": \"%s\",\n", host_cpus, benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name]
        if (kqops[name] != "") printf ", \"kqops\": %s", kqops[name]
        if (tmax[name]  != "") printf ", \"tmax_p99_us\": %s", tmax[name]
        if (sb[name] != "")
            printf ", \"steal_batches\": %s, \"stolen_chunks\": %s, \"stolen_queries\": %s", \
                sb[name], sc[name], sq[name]
        if (hh[name] != "")
            printf ", \"hot_hits\": %s, \"gets\": %s", hh[name], hg[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

#!/usr/bin/env bash
# bench.sh — the serving-path A/Bs: the binary UDP protocol vs the TCP/RESP2
# front end, each on the per-frame and batched pipeline paths, single-queue vs
# 4-way SO_REUSEPORT-sharded ingestion at saturation on both protocols, and
# (this PR) the zipf point-read/scan mix on the per-frame vs pipelined paths
# (batched MVCC range merges, task.SC), same store / key space / 5%-SET mix.
# The Q4 rows carry queues_effective plus per-queue receive counters
# (kframes_qmin/qmax) proving the kernel actually spread the flows; the
# AdaptQ4 row shows the cost model sizing the effective reader count (a 1-CPU
# host gates extra readers off); the Scan rows carry entries/scan proving the
# scans did real merge work. Echoes the raw `go test -bench` output and
# distills it into a machine-readable BENCH_10.json (CI uploads it as a
# non-blocking artifact — shared runners are far too noisy for benchmark
# numbers to gate merges).
#
# Usage: scripts/bench.sh [out.json]
#   BENCHTIME=3s scripts/bench.sh    # per-benchmark duration (default 3s)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_10.json}"
BENCHTIME="${BENCHTIME:-3s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Anchored: `PerFrame` alone must not match `PerFrameQ4` — the point of the
# A/B is that the single-queue and Q4 rows are distinct. The fully-anchored
# alternation also silently drops any benchmark added later, so every new
# row family must be spliced in here explicitly (the Scan arm below is PR
# 10's).
go test -run '^$' \
    -bench '^BenchmarkServe(Scan)?(PerFrame|Pipelined|RESPPerFrame|RESPPipelined)(Q4)?$|^BenchmarkServePipelinedAdaptQ4$' \
    -benchtime "$BENCHTIME" -count 1 -timeout 1800s . | tee "$RAW"

awk -v host_cpus="$(nproc)" \
    -v go_version="$(go version | awk '{print $3}')" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v benchtime="$BENCHTIME" '
# Result lines carry the metrics (kqops = served queries/s across all client
# goroutines; q/batch = mean pipeline batch fill on the batched paths;
# queues_effective + kframes_qmin/qmax = ingestion shard count and per-queue
# receive spread on the Q4 rows).
/^BenchmarkServe/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    order[++n] = name
    ns[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "kqops")            kqops[name] = $i
        if ($(i+1) == "q/batch")          qbatch[name] = $i
        if ($(i+1) == "queues_effective") qeff[name] = $i
        if ($(i+1) == "kframes_qmin")     qmin[name] = $i
        if ($(i+1) == "kframes_qmax")     qmax[name] = $i
        if ($(i+1) == "entries/scan")     escan[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"issue\": 10,\n"
    printf "  \"bench\": \"serving A/Bs: single-queue vs SO_REUSEPORT-sharded ingestion on UDP/RESP, adapt-sized readers, and the zipf point-read/scan mix (per-frame vs pipelined batched range merges)\",\n"
    printf "  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", go_version, commit
    printf "  \"host_cpus\": %s,\n  \"benchtime\": \"%s\",\n", host_cpus, benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name]
        if (kqops[name]  != "") printf ", \"kqops\": %s", kqops[name]
        if (qbatch[name] != "") printf ", \"q_per_batch\": %s", qbatch[name]
        if (qeff[name]   != "") printf ", \"queues_effective\": %s", qeff[name]
        if (qmin[name]   != "") printf ", \"kframes_qmin\": %s", qmin[name]
        if (qmax[name]   != "") printf ", \"kframes_qmax\": %s", qmax[name]
        if (escan[name]  != "") printf ", \"entries_per_scan\": %s", escan[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

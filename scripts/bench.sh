#!/usr/bin/env bash
# bench.sh — the serving-path A/B behind the front-end PR: the binary UDP
# protocol vs the TCP/RESP2 front end, each on the per-frame and batched
# pipeline paths, same store / key space / 5%-SET mix. Echoes the raw
# `go test -bench` output and distills it into a machine-readable
# BENCH_8.json (CI uploads it as a non-blocking artifact — shared runners
# are far too noisy for benchmark numbers to gate merges).
#
# Usage: scripts/bench.sh [out.json]
#   BENCHTIME=3s scripts/bench.sh    # per-benchmark duration (default 3s)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_8.json}"
BENCHTIME="${BENCHTIME:-3s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkServe(PerFrame|Pipelined|RESPPerFrame|RESPPipelined)$' \
    -benchtime "$BENCHTIME" -count 1 -timeout 1200s . | tee "$RAW"

awk -v host_cpus="$(nproc)" \
    -v go_version="$(go version | awk '{print $3}')" \
    -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v benchtime="$BENCHTIME" '
# Result lines carry the metrics (kqops = served queries/s across all client
# goroutines; q/batch = mean pipeline batch fill on the batched paths).
/^BenchmarkServe/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    order[++n] = name
    ns[name] = $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "kqops")   kqops[name] = $i
        if ($(i+1) == "q/batch") qbatch[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"issue\": 8,\n"
    printf "  \"bench\": \"serving A/B: UDP binary protocol vs TCP/RESP2 front end, per-frame vs pipelined\",\n"
    printf "  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", go_version, commit
    printf "  \"host_cpus\": %s,\n  \"benchtime\": \"%s\",\n", host_cpus, benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name]
        if (kqops[name]  != "") printf ", \"kqops\": %s", kqops[name]
        if (qbatch[name] != "") printf ", \"q_per_batch\": %s", qbatch[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

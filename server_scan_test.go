package dido

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/frontend"
)

// scanPaths runs fn against a fresh ordered-store server on the per-frame and
// the pipelined serving path with both front ends bound, so every SCAN
// behavior is pinned on both execution paths and both protocols.
func scanPaths(t *testing.T, fn func(t *testing.T, srv *Server, udpAddr, respAddr string)) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		opts := ServerOptions{RESPConnInFlight: -1}
		if pipelined {
			name = "pipelined"
			opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20, Ordered: true})
			srv := NewServerOpts(st, opts)
			udpAddr, udpErrc := startServer(t, srv)
			respAddr, respErrc := startRESP(t, srv)
			defer srv.Close()
			fn(t, srv, udpAddr, respAddr)
			srv.Close()
			waitServe(t, udpErrc)
			waitServe(t, respErrc)
		})
	}
}

// TestServeScanEndToEnd drives SCAN through the full stack: keys in, ordered
// results out, identical across the UDP binary protocol and RESP, with limit
// clamping and cursor pagination (start = last key + "\x00").
func TestServeScanEndToEnd(t *testing.T) {
	scanPaths(t, func(t *testing.T, srv *Server, udpAddr, respAddr string) {
		c, err := Dial(udpAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		const n = 40
		var want []string
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("scan:%03d", i)
			want = append(want, k)
			if err := c.Set([]byte(k), []byte("v-"+k)); err != nil {
				t.Fatalf("SET %s: %v", k, err)
			}
		}

		check := func(entries []ScanEntry, wantKeys []string) {
			t.Helper()
			if len(entries) != len(wantKeys) {
				t.Fatalf("got %d entries, want %d", len(entries), len(wantKeys))
			}
			for i, e := range entries {
				if string(e.Key) != wantKeys[i] {
					t.Fatalf("entry %d key %q, want %q", i, e.Key, wantKeys[i])
				}
				if wantV := "v-" + wantKeys[i]; string(e.Value) != wantV {
					t.Fatalf("entry %d value %q, want %q", i, e.Value, wantV)
				}
			}
		}

		// Full range, one shot.
		entries, err := c.Scan([]byte("scan:"), []byte("scan;"), 0)
		if err != nil {
			t.Fatal(err)
		}
		check(entries, want)

		// Bounded sub-range [scan:010, scan:020).
		entries, err = c.Scan([]byte("scan:010"), []byte("scan:020"), 0)
		if err != nil {
			t.Fatal(err)
		}
		check(entries, want[10:20])

		// Cursor pagination with limit 7: pages concatenate to the full range.
		var paged []ScanEntry
		cursor := []byte("scan:")
		for {
			page, err := c.Scan(cursor, []byte("scan;"), 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(page) == 0 {
				break
			}
			if len(page) > 7 {
				t.Fatalf("page of %d entries exceeds limit 7", len(page))
			}
			paged = append(paged, page...)
			cursor = append(append([]byte(nil), page[len(page)-1].Key...), 0)
		}
		check(paged, want)

		// RESP answers the same scans with the same contents.
		rc, err := frontend.DialRESP(respAddr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		rentries, err := rc.Scan([]byte("scan:"), []byte("scan;"), 0)
		if err != nil {
			t.Fatal(err)
		}
		check(rentries, want)
		rpage, err := rc.Scan([]byte("scan:010"), []byte("scan:020"), 5)
		if err != nil {
			t.Fatal(err)
		}
		check(rpage, want[10:15])
	})
}

// TestServeScanUnordered pins the rejection path: a store built without the
// ordered index answers SCAN with StatusError on both front ends, on both
// execution paths, without disturbing point ops.
func TestServeScanUnordered(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		opts := ServerOptions{RESPConnInFlight: -1}
		if pipelined {
			name = "pipelined"
			opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
			srv := NewServerOpts(st, opts)
			udpAddr, udpErrc := startServer(t, srv)
			respAddr, respErrc := startRESP(t, srv)
			defer srv.Close()

			c, err := Dial(udpAddr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Set([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Scan(nil, nil, 0); err == nil {
				t.Fatal("SCAN on an unordered store succeeded")
			}
			// Point ops keep working around the rejected scan.
			if v, ok, err := c.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
				t.Fatalf("GET after rejected SCAN = %q %v %v", v, ok, err)
			}

			rc, err := frontend.DialRESP(respAddr, 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			if _, err := rc.Scan(nil, nil, 0); err == nil {
				t.Fatal("RESP SCAN on an unordered store succeeded")
			}
			srv.Close()
			waitServe(t, udpErrc)
			waitServe(t, respErrc)
		})
	}
}

// TestServeScanRESPErrors pins the RESP-level argument validation: wrong
// arity and non-integer limits answer in-band errors without breaking the
// connection's reply stream.
func TestServeScanRESPErrors(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20, Ordered: true})
	srv := NewServerOpts(st, ServerOptions{RESPConnInFlight: -1})
	respAddr, errc := startRESP(t, srv)
	defer srv.Close()

	// Command-level errors (rcErr) reply in-band and then close the
	// connection, like any other malformed command — one dial per probe.
	for _, args := range [][][]byte{
		{[]byte("SCAN"), []byte("a")},                                // wrong arity
		{[]byte("SCAN"), []byte("a"), []byte("b"), []byte("bogus")},  // non-integer limit
		{[]byte("SCAN"), []byte("a"), []byte("b"), []byte("-3")},     // negative limit
		{[]byte("SCAN"), []byte("a"), []byte("b"), []byte("1"), nil}, // too many args
	} {
		rc, err := frontend.DialRESP(respAddr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := rc.Cmd(args...); err != nil {
			t.Fatalf("%q: %v", args[0], err)
		} else if v.Type() != '-' {
			t.Fatalf("SCAN with args %q: reply type %q, want error", args[1:], v.Type())
		}
		rc.Close()
	}
	// A well-formed SCAN on a fresh connection still serves.
	rc, err := frontend.DialRESP(respAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Scan(nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := rc.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestScanChaosEquivalence mixes SCAN into the drop/dup/reorder injector
// workload on both execution paths (the SCAN arm of the multi-queue chaos
// suite): under datagram loss, duplication and reordering — with churn
// writers running — every scan reply must be sorted, duplicate-free and
// value-correct, duplicate SCAN retries are answered from the reply cache
// without re-execution mattering (scans are read-only, so replay is
// invisible; the pin is that retried pages stay coherent), and cursor
// pagination over a stable key region reassembles that region exactly.
func TestScanChaosEquivalence(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 16 << 20, Ordered: true})
			qi := &queueInjectors{}
			opts := ServerOptions{
				NetQueues: 4,
				WrapConn: qi.wrap(faults.Profile{
					Drop:    0.10,
					Dup:     0.05,
					Reorder: 0.10,
				}),
			}
			if pipelined {
				opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
			}
			srv := NewServerOpts(st, opts)
			addr, errc := startServer(t, srv)
			defer srv.Close()

			// Stable region: loaded before the chaos, never written again, so
			// every scan of it — whatever the interleaving — must return it
			// exactly.
			const stable = 64
			var stableKeys []string
			{
				c, err := DialOpts(addr, ClientOptions{
					Timeout: 50 * time.Millisecond, Retries: 30,
					Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < stable; i++ {
					k := fmt.Sprintf("scan:%03d", i)
					stableKeys = append(stableKeys, k)
					if err := c.Set([]byte(k), []byte("sv-"+k)); err != nil {
						t.Fatalf("warm %s: %v", k, err)
					}
				}
				c.Close()
			}

			const clients = 4
			const rounds = 10
			var wg sync.WaitGroup
			for ci := 0; ci < clients; ci++ {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					c, err := DialOpts(addr, ClientOptions{
						Timeout:    50 * time.Millisecond,
						Retries:    30,
						Backoff:    2 * time.Millisecond,
						MaxBackoff: 20 * time.Millisecond,
						Seed:       int64(ci + 1),
					})
					if err != nil {
						t.Errorf("client %d dial: %v", ci, err)
						return
					}
					defer c.Close()
					for r := 0; r < rounds; r++ {
						// Churn: write and delete keys in a separate region
						// while other clients scan.
						for i := 0; i < 4; i++ {
							k := fmt.Sprintf("churn:%d:%d", ci, i)
							if err := c.Set([]byte(k), []byte("cv:"+k)); err != nil {
								t.Errorf("client %d churn SET: %v", ci, err)
								return
							}
						}
						if r%2 == 1 {
							if _, err := c.Delete([]byte(fmt.Sprintf("churn:%d:%d", ci, r%4))); err != nil {
								t.Errorf("client %d churn DEL: %v", ci, err)
								return
							}
						}

						// Full stable-region scan: exact contents, every time.
						entries, err := c.Scan([]byte("scan:"), []byte("scan;"), 0)
						if err != nil {
							t.Errorf("client %d round %d SCAN: %v", ci, r, err)
							return
						}
						if len(entries) != stable {
							t.Errorf("client %d round %d: scan saw %d stable keys, want %d", ci, r, len(entries), stable)
							return
						}
						for i, e := range entries {
							if string(e.Key) != stableKeys[i] || string(e.Value) != "sv-"+stableKeys[i] {
								t.Errorf("client %d round %d entry %d = %q=%q, want %q", ci, r, i, e.Key, e.Value, stableKeys[i])
								return
							}
						}

						// Paginated stable-region scan: pages (each its own
						// retryable request through the chaos) reassemble the
						// region exactly — the cursor is stable across retries.
						var paged [][]byte
						cursor := []byte("scan:")
						for {
							page, err := c.Scan(cursor, []byte("scan;"), 7)
							if err != nil {
								t.Errorf("client %d round %d page: %v", ci, r, err)
								return
							}
							if len(page) == 0 {
								break
							}
							for _, e := range page {
								paged = append(paged, append([]byte(nil), e.Key...))
							}
							cursor = append(append([]byte(nil), page[len(page)-1].Key...), 0)
						}
						if len(paged) != stable {
							t.Errorf("client %d round %d: pagination yielded %d keys, want %d", ci, r, len(paged), stable)
							return
						}
						for i, k := range paged {
							if string(k) != stableKeys[i] {
								t.Errorf("client %d round %d: page key %d = %q, want %q", ci, r, i, k, stableKeys[i])
								return
							}
						}

						// Churn-region scan: contents race with writers, so only
						// the structure is pinned — sorted, duplicate-free, and
						// every value matches its key.
						churn, err := c.Scan([]byte("churn:"), []byte("churn;"), 0)
						if err != nil {
							t.Errorf("client %d round %d churn SCAN: %v", ci, r, err)
							return
						}
						if !sort.SliceIsSorted(churn, func(a, b int) bool {
							return bytes.Compare(churn[a].Key, churn[b].Key) < 0
						}) {
							t.Errorf("client %d round %d: churn scan unsorted", ci, r)
							return
						}
						for i, e := range churn {
							if i > 0 && bytes.Equal(churn[i-1].Key, e.Key) {
								t.Errorf("client %d round %d: duplicate churn key %q", ci, r, e.Key)
								return
							}
							if want := "cv:" + string(e.Key); string(e.Value) != want {
								t.Errorf("client %d round %d: churn %q=%q, want %q", ci, r, e.Key, e.Value, want)
								return
							}
						}
					}
				}(ci)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			fs := qi.stats()
			if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Reordered == 0 {
				t.Fatalf("injectors idle: %+v", fs)
			}
			ss := srv.Stats()
			t.Logf("scan chaos: faults=%+v server=%+v store-scans=%d", fs, ss, st.Stats().Scans)
			srv.Close()
			waitServe(t, errc)
		})
	}
}

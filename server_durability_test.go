package dido

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// durableOpts returns ServerOptions with the durability tier on dir, batch
// (group-commit) sync, and no periodic snapshotter unless asked.
func durableOpts(dir string, pipelined bool) ServerOptions {
	opts := ServerOptions{Durability: &DurabilityOptions{Dir: dir, Sync: wal.SyncBatch}}
	if pipelined {
		opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
	}
	return opts
}

// TestDurableServerRecoversAckedSets drives acked SETs and DELETEs through a
// durable server, closes it, and recovers into a fresh store: every acked SET
// must be readable and every acked DELETE gone, on both serving paths.
func TestDurableServerRecoversAckedSets(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
			srv, err := NewServerDurable(st, durableOpts(dir, pipelined))
			if err != nil {
				t.Fatal(err)
			}
			addr, errc := startServer(t, srv)
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			const keys = 300
			for i := 0; i < keys; i++ {
				if err := c.Set(keyN(i), valN(i)); err != nil {
					t.Fatalf("set %d: %v", i, err)
				}
			}
			for i := 0; i < keys; i += 10 {
				if _, err := c.Delete(keyN(i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
			c.Close()
			srv.Close()
			waitServe(t, errc)

			// Recover into a brand-new store; recovery runs inside the
			// constructor, no Serve needed.
			st2 := NewStore(StoreConfig{MemoryBytes: 16 << 20})
			srv2, err := NewServerDurable(st2, durableOpts(dir, false))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer srv2.Close()
			ds, ok := srv2.DurabilityStats()
			if !ok || ds.RecoveredWALRecords == 0 {
				t.Fatalf("recovery replayed nothing: %+v ok=%v", ds, ok)
			}
			for i := 0; i < keys; i++ {
				v, found := st2.Get(keyN(i))
				if i%10 == 0 {
					if found {
						t.Fatalf("deleted key %d resurrected", i)
					}
					continue
				}
				if !found || string(v) != string(valN(i)) {
					t.Fatalf("acked key %d lost after recovery (found=%v)", i, found)
				}
			}
		})
	}
}

// TestDurableServerSnapshotTruncatesWAL pins the snapshot/truncate protocol
// end to end through the server: SnapshotNow leaves an empty wal.log and a
// loadable snapshot.snap, and a recovery spanning snapshot + post-snapshot
// WAL tail reconstructs everything.
func TestDurableServerSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv, err := NewServerDurable(st, durableOpts(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	addr, errc := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Set(keyN(i), valN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	walPath, walOld, snapPath := snapshot.Paths(dir)
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != 0 {
		t.Fatalf("wal.log not truncated by snapshot: %v %v", err, fi)
	}
	if _, err := os.Stat(walOld); !os.IsNotExist(err) {
		t.Fatal("wal.old left behind after successful snapshot")
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot.snap missing: %v", err)
	}
	ds, _ := srv.DurabilityStats()
	if ds.Snapshots.Snapshots != 1 || ds.WAL.Rotations != 1 {
		t.Fatalf("stats after snapshot: %+v", ds)
	}
	// Post-snapshot writes land in the fresh segment.
	for i := 100; i < 150; i++ {
		if err := c.Set(keyN(i), valN(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	srv.Close()
	waitServe(t, errc)

	st2 := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv2, err := NewServerDurable(st2, durableOpts(dir, false))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Close()
	ds2, _ := srv2.DurabilityStats()
	if ds2.RecoveredSnapshotEntries == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", ds2)
	}
	for i := 0; i < 150; i++ {
		if v, ok := st2.Get(keyN(i)); !ok || string(v) != string(valN(i)) {
			t.Fatalf("key %d lost across snapshot+tail recovery (ok=%v)", i, ok)
		}
	}
}

// accountingFile wraps a real WAL segment file and tracks how many bytes were
// written and how many were durable (synced) at any time — the instrument for
// the graceful-drain regression test.
type accountingFile struct {
	f  wal.File
	mu sync.Mutex
	// written/synced are logical byte counts across all segments sharing
	// this accounting (rotation reopens go through the same struct).
	written, synced int64
}

func (a *accountingFile) Write(p []byte) (int, error) {
	n, err := a.f.Write(p)
	a.mu.Lock()
	a.written += int64(n)
	a.mu.Unlock()
	return n, err
}

func (a *accountingFile) Sync() error {
	err := a.f.Sync()
	if err == nil {
		a.mu.Lock()
		a.synced = a.written
		a.mu.Unlock()
	}
	return err
}

func (a *accountingFile) Close() error { return a.f.Close() }

func (a *accountingFile) counts() (written, synced int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.written, a.synced
}

// TestDurableCloseFsyncsTail is the graceful-drain regression test: with the
// sync policy off (nothing fsyncs during serving), Server.Close must still
// flush and fsync the WAL tail before returning — the bytes written and the
// bytes durable must match the moment Close returns, on both serving paths.
func TestDurableCloseFsyncsTail(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			acct := &accountingFile{}
			opts := durableOpts(t.TempDir(), pipelined)
			opts.Durability.Sync = wal.SyncOff
			opts.Durability.OpenFile = func(path string) (wal.File, error) {
				f, err := wal.DefaultOpenFile(path)
				if err != nil {
					return nil, err
				}
				acct.f = f
				return acct, nil
			}
			st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
			srv, err := NewServerDurable(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			addr, errc := startServer(t, srv)
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				if err := c.Set(keyN(i), valN(i)); err != nil {
					t.Fatal(err)
				}
			}
			c.Close()
			if err := srv.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			written, synced := acct.counts()
			if written == 0 {
				t.Fatal("no WAL bytes written despite acked SETs")
			}
			if synced != written {
				t.Fatalf("Close returned with %d of %d WAL bytes durable — tail not fsynced", synced, written)
			}
			waitServe(t, errc)
		})
	}
}

// rawDo sends one encoded frame over conn and collects responses until count
// responses arrived, retrying the send on timeout. It is the raw-frame client
// the at-most-once restart test needs (a real Client would mint a fresh
// request ID per call, but the test must resend an identical frame).
func rawDo(t *testing.T, conn *net.UDPConn, frame []byte, id uint64, count int) []proto.Response {
	t.Helper()
	buf := make([]byte, proto.MaxFrameBytes)
	got := make([]proto.Response, count)
	have := make([]bool, count)
	need := count
	for attempt := 0; attempt < 50; attempt++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("raw write: %v", err)
		}
		deadline := time.Now().Add(200 * time.Millisecond)
		for need > 0 && time.Now().Before(deadline) {
			conn.SetReadDeadline(deadline)
			n, err := conn.Read(buf)
			if err != nil {
				break
			}
			rs, rid, off, perr := proto.ParseResponseFrameID(buf[:n], nil)
			if perr != nil || rid != id {
				continue
			}
			for i, r := range rs {
				idx := off + i
				if idx < 0 || idx >= count || have[idx] {
					continue
				}
				if len(r.Value) > 0 {
					r.Value = append([]byte(nil), r.Value...)
				}
				got[idx] = r
				have[idx] = true
				need--
			}
		}
		if need == 0 {
			return got
		}
	}
	t.Fatalf("raw frame %d never fully answered", id)
	return nil
}

// TestDurableServerAtMostOnceAcrossRestart pins that the at-most-once reply
// cache survives a restart: a client that retries an acked SET frame after
// the server was restarted receives the recovered cached reply, and the retry
// does not re-execute the write (a newer value for the key stays in place).
func TestDurableServerAtMostOnceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv, err := NewServerDurable(st, durableOpts(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	addr, errc := startServer(t, srv)
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	key := []byte("the-key")
	frameA := proto.EncodeFrameV2(nil, 77, []proto.Query{{Op: proto.OpSet, Key: key, Value: []byte("v1")}})
	if rs := rawDo(t, conn, frameA, 77, 1); rs[0].Status != proto.StatusOK {
		t.Fatalf("set v1: %+v", rs[0])
	}
	frameB := proto.EncodeFrameV2(nil, 78, []proto.Query{{Op: proto.OpSet, Key: key, Value: []byte("v2")}})
	if rs := rawDo(t, conn, frameB, 78, 1); rs[0].Status != proto.StatusOK {
		t.Fatalf("set v2: %+v", rs[0])
	}
	srv.Close()
	waitServe(t, errc)

	// Restart on the same port; the client socket (and so its address, the
	// reply-cache key) is unchanged.
	st2 := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv2, err := NewServerDurable(st2, durableOpts(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	errc2 := make(chan error, 1)
	go func() { errc2 <- srv2.Serve(addr) }()
	for i := 0; srv2.Addr() == nil; i++ {
		if i > 500 {
			t.Fatal("restarted server never bound")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Retry frame A (the stale SET v1). The recovered cache must answer it
	// without re-executing: the reply says OK, the key still holds v2.
	if rs := rawDo(t, conn, frameA, 77, 1); rs[0].Status != proto.StatusOK {
		t.Fatalf("replayed ack: %+v", rs[0])
	}
	if ss := srv2.Stats(); ss.Replayed == 0 {
		t.Fatalf("retry was not answered from the recovered reply cache: %+v", ss)
	}
	frameC := proto.EncodeFrameV2(nil, 79, []proto.Query{{Op: proto.OpGet, Key: key}})
	rs := rawDo(t, conn, frameC, 79, 1)
	if rs[0].Status != proto.StatusOK || string(rs[0].Value) != "v2" {
		t.Fatalf("retried SET re-executed after restart: key = %q (%+v)", rs[0].Value, rs[0].Status)
	}
	srv2.Close()
	waitServe(t, errc2)
}

// TestDurableServerRecoversTornTail simulates a crash mid-append: garbage
// after the last valid record. Recovery must keep every whole record,
// truncate the torn bytes, and leave the segment clean for new appends.
func TestDurableServerRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	walPath, _, _ := snapshot.Paths(dir)
	l, err := wal.Open(walPath, wal.Options{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 50
	for i := 0; i < keys; i++ {
		if err := l.Commit(wal.AppendSet(nil, keyN(i), valN(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01} // half a record
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv, err := NewServerDurable(st, durableOpts(dir, false))
	if err != nil {
		t.Fatalf("recovery refused a torn tail: %v", err)
	}
	ds, _ := srv.DurabilityStats()
	if ds.RecoveredWALRecords != keys || ds.RecoveredTornBytes != int64(len(torn)) {
		t.Fatalf("recovered %d records, torn %d bytes; want %d, %d",
			ds.RecoveredWALRecords, ds.RecoveredTornBytes, keys, len(torn))
	}
	for i := 0; i < keys; i++ {
		if v, ok := st.Get(keyN(i)); !ok || string(v) != string(valN(i)) {
			t.Fatalf("key %d lost to the torn tail", i)
		}
	}
	// New appends land cleanly after the truncation.
	addr, errc := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(keyN(keys), valN(keys)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	waitServe(t, errc)

	st2 := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv2, err := NewServerDurable(st2, durableOpts(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for i := 0; i <= keys; i++ {
		if _, ok := st2.Get(keyN(i)); !ok {
			t.Fatalf("key %d missing after second recovery", i)
		}
	}
}

// TestCollectMetricsNamesDurable pins the durability tier's metric-name
// surface (the non-durable surface is pinned by TestCollectMetricsNames; the
// tier only ever adds names).
func TestCollectMetricsNamesDurable(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv, err := NewServerDurable(st, durableOpts(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	addr, errc := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	w := obs.NewMetricsWriter()
	srv.CollectMetrics(w)
	got := w.String()
	for _, name := range []string{
		"dido_wal_records_total", "dido_wal_bytes_total", "dido_wal_syncs_total",
		"dido_wal_errors_total", "dido_wal_rotations_total", "dido_wal_dropped_acks_total",
		`dido_wal_fsync_micros{quantile="0.5"}`, "dido_wal_fsync_micros_count",
		"dido_snapshots_total", "dido_snapshot_errors_total",
		"dido_snapshot_last_unix", "dido_snapshot_last_entries",
		"dido_recovery_duration_seconds", "dido_recovery_wal_records",
		"dido_recovery_dropped_applies",
	} {
		if !strings.Contains(got, name) {
			t.Errorf("durability metric %s missing from exposition", name)
		}
	}
	v := srv.ConfigView()
	if v.Durability == nil || v.Durability.Dir != dir || v.Durability.Sync != "batch" || !v.Durability.Snapshots {
		t.Fatalf("config view durability section: %+v", v.Durability)
	}
	srv.Close()
	waitServe(t, errc)
}

// failSetBackend rejects every Set, modeling an arena too small to hold the
// recovered state.
type failSetBackend struct{ Backend }

func (failSetBackend) Set(key, value []byte) error { return errors.New("arena full") }

// TestRecoveryCountsDroppedApplies pins the recovery accounting for a backend
// that cannot hold the durable state: rejected SET applications must surface
// in DurabilityStats instead of silently reading as misses.
func TestRecoveryCountsDroppedApplies(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv, err := NewServerDurable(st, durableOpts(dir, false))
	if err != nil {
		t.Fatal(err)
	}
	addr, errc := startServer(t, srv)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10
	for i := 0; i < keys; i++ {
		if err := c.Set(keyN(i), valN(i)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	c.Close()
	srv.Close()
	waitServe(t, errc)

	// A healthy recovery drops nothing.
	st2 := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	srv2, err := NewServerDurable(st2, durableOpts(dir, false))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if ds, _ := srv2.DurabilityStats(); ds.RecoveryDroppedApplies != 0 {
		t.Fatalf("healthy recovery dropped %d applies", ds.RecoveryDroppedApplies)
	}
	srv2.Close()

	// A backend that rejects Sets must report every dropped application.
	srv3, err := NewServerDurable(failSetBackend{NewStore(StoreConfig{MemoryBytes: 8 << 20})}, durableOpts(dir, false))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv3.Close()
	ds, ok := srv3.DurabilityStats()
	if !ok || ds.RecoveryDroppedApplies != keys {
		t.Fatalf("dropped applies = %d, want %d (stats: %+v ok=%v)", ds.RecoveryDroppedApplies, keys, ds, ok)
	}
}

func keyN(i int) []byte { return []byte(fmt.Sprintf("durable-key-%04d", i)) }
func valN(i int) []byte { return []byte(fmt.Sprintf("durable-val-%04d-%s", i, strings.Repeat("x", 32))) }

package dido

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/proto"
)

// startServer runs srv on an ephemeral port and returns its address and the
// Serve error channel.
func startServer(t *testing.T, srv *Server) (string, chan error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve("127.0.0.1:0") }()
	for i := 0; i < 500; i++ {
		if a := srv.Addr(); a != nil {
			return a.String(), errc
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never bound")
	return "", nil
}

func waitServe(t *testing.T, errc chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop")
	}
}

// TestCloseBeforeServe pins the Serve/Close race: a Close that lands before
// Serve publishes the conn must still shut the listener down.
func TestCloseBeforeServe(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewServer(st)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve("127.0.0.1:0") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not notice the prior Close")
	}
}

// panicBackend poisons one key to prove per-frame recovery.
type panicBackend struct {
	inner Backend
}

func (p panicBackend) Get(key []byte) ([]byte, bool) {
	if string(key) == "boom" {
		panic("poisoned frame")
	}
	return p.inner.Get(key)
}
func (p panicBackend) Set(key, value []byte) error { return p.inner.Set(key, value) }
func (p panicBackend) Delete(key []byte) bool      { return p.inner.Delete(key) }

func TestServeLoopSurvivesPanickedFrame(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewServer(panicBackend{inner: st})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := DialOpts(addr, ClientOptions{Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Get([]byte("boom")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("poisoned GET err = %v, want ErrTimeout", err)
	}
	// The serve loop must still be alive and serving.
	if err := c.Set([]byte("alive"), []byte("yes")); err != nil {
		t.Fatalf("server dead after poisoned frame: %v", err)
	}
	if v, ok, err := c.Get([]byte("alive")); err != nil || !ok || string(v) != "yes" {
		t.Fatalf("get after panic = %q %v %v", v, ok, err)
	}
	if p := srv.Stats().Panics; p < 1 {
		t.Fatalf("panics counter = %d, want >= 1", p)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestChaosRetryAbsorbsFaults is the chaos acceptance test: against a server
// behind the fault injector at 10% drop + 5% duplicate + 10% reorder (both
// directions), every request completes with zero client-visible errors — all
// loss absorbed by retry — and responses are matched to requests by ID (a
// mismatched or stale response would corrupt the per-key values checked
// below, and duplicate execution would be visible in the served counters).
func TestChaosRetryAbsorbsFaults(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	var injector *faults.Conn
	srv := NewServerOpts(st, ServerOptions{
		WrapConn: func(pc net.PacketConn) net.PacketConn {
			injector = faults.Wrap(pc, faults.Symmetric(1234, faults.Profile{
				Drop:    0.10,
				Dup:     0.05,
				Reorder: 0.10,
			}))
			return injector
		},
	})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := DialOpts(addr, ClientOptions{
		Timeout:    50 * time.Millisecond,
		Retries:    30,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 40
	const batch = 8
	for r := 0; r < rounds; r++ {
		var sets []Query
		for i := 0; i < batch; i++ {
			sets = append(sets, Query{
				Op:    OpSet,
				Key:   []byte(fmt.Sprintf("r%02d:k%d", r, i)),
				Value: []byte(fmt.Sprintf("val-%d-%d", r, i)),
			})
		}
		resps, err := c.Do(sets)
		if err != nil {
			t.Fatalf("round %d SET: %v (client-visible error under chaos)", r, err)
		}
		for i, resp := range resps {
			if resp.Status != StatusOK {
				t.Fatalf("round %d SET %d status %d", r, i, resp.Status)
			}
		}
		var gets []Query
		for i := 0; i < batch; i++ {
			gets = append(gets, Query{Op: OpGet, Key: sets[i].Key})
		}
		resps, err = c.Do(gets)
		if err != nil {
			t.Fatalf("round %d GET: %v (client-visible error under chaos)", r, err)
		}
		for i, resp := range resps {
			want := fmt.Sprintf("val-%d-%d", r, i)
			if resp.Status != StatusOK || string(resp.Value) != want {
				t.Fatalf("round %d GET %d = %d %q, want OK %q (response/request mismatch)",
					r, i, resp.Status, resp.Value, want)
			}
		}
	}

	fs := injector.Stats()
	if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Reordered == 0 {
		t.Fatalf("injector idle: %+v", fs)
	}
	cs := c.Stats()
	if cs.Retries == 0 {
		t.Fatal("no retries under 10%% drop — faults not exercised")
	}
	ss := srv.Stats()
	t.Logf("chaos: faults=%+v client=%+v server={served:%d frames:%d replayed:%d malformed:%d}",
		fs, cs, ss.Served, ss.Frames, ss.Replayed, ss.Malformed)
	srv.Close()
	waitServe(t, errc)
}

// TestChaosWithCorruption adds datagram corruption: the v2 checksum must
// turn corrupted frames into drops (absorbed by retry), never into wrong
// answers.
func TestChaosWithCorruption(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	var injector *faults.Conn
	srv := NewServerOpts(st, ServerOptions{
		WrapConn: func(pc net.PacketConn) net.PacketConn {
			injector = faults.Wrap(pc, faults.Symmetric(77, faults.Profile{Drop: 0.05, Corrupt: 0.15}))
			return injector
		},
	})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := DialOpts(addr, ClientOptions{
		Timeout:    50 * time.Millisecond,
		Retries:    30,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 60; i++ {
		key := []byte(fmt.Sprintf("c:%d", i))
		want := fmt.Sprintf("v-%d", i)
		if err := c.Set(key, []byte(want)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		v, ok, err := c.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("get %d = %q %v %v, want %q", i, v, ok, err, want)
		}
	}
	if fs := injector.Stats(); fs.Corrupted == 0 {
		t.Fatalf("injector never corrupted: %+v", fs)
	}
	if ss := srv.Stats(); ss.Malformed == 0 {
		t.Fatal("server never saw a corrupted frame — checksum path not exercised")
	}
	srv.Close()
	waitServe(t, errc)
}

// TestOverloadShedsWithBusy is the overload acceptance test: at an offered
// load exceeding the in-flight budget the server sheds with StatusBusy
// (visible in both server and client counters) while the latency of admitted
// requests stays bounded.
func TestOverloadShedsWithBusy(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
	// Every store op stalls 5ms, so two in-flight frames saturate the
	// server while requests arrive from eight clients at once.
	slow := faults.WrapBackend(st, faults.BackendConfig{Seed: 5, StallRate: 1, Stall: 5 * time.Millisecond})
	srv := NewServerOpts(slow, ServerOptions{MaxInFlight: 2})
	addr, errc := startServer(t, srv)
	defer srv.Close()

	const clients = 8
	const perClient = 15
	var (
		mu        sync.Mutex
		latencies []time.Duration
		okCount   int
		busyCount int
		busyRound uint64
	)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := DialOpts(addr, ClientOptions{
				Timeout: 500 * time.Millisecond,
				Retries: 2,
				Backoff: time.Millisecond,
				Seed:    int64(ci + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				start := time.Now()
				_, err := c.Do([]Query{{Op: OpSet, Key: []byte(fmt.Sprintf("c%d-k%d", ci, i)), Value: []byte("v")}})
				el := time.Since(start)
				mu.Lock()
				switch {
				case err == nil:
					okCount++
					latencies = append(latencies, el)
				case errors.Is(err, ErrBusy):
					busyCount++
				default:
					t.Errorf("client %d req %d: %v", ci, i, err)
				}
				mu.Unlock()
			}
			mu.Lock()
			busyRound += c.Stats().BusyRounds
			mu.Unlock()
		}(ci)
	}
	wg.Wait()

	ss := srv.Stats()
	if ss.Shed == 0 {
		t.Fatalf("server never shed at %d clients over budget 2: %+v", clients, ss)
	}
	if busyRound == 0 {
		t.Fatal("no client observed StatusBusy")
	}
	if okCount == 0 {
		t.Fatal("no request was admitted")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	// Shedding instead of queuing keeps admitted-request latency near the
	// service time (5ms stall + a few busy/backoff rounds), far under the
	// client timeout.
	if p99 > 250*time.Millisecond {
		t.Fatalf("p99 of admitted requests = %v — shedding failed to bound latency", p99)
	}
	t.Logf("overload: ok=%d busy-failed=%d busy-rounds=%d shed=%d p99=%v",
		okCount, busyCount, busyRound, ss.Shed, p99)
	srv.Close()
	waitServe(t, errc)
}

// countingBackend counts Set executions to prove at-most-once retries.
type countingBackend struct {
	inner Backend
	sets  int
	mu    sync.Mutex
}

func (b *countingBackend) Get(key []byte) ([]byte, bool) { return b.inner.Get(key) }
func (b *countingBackend) Set(key, value []byte) error {
	b.mu.Lock()
	b.sets++
	b.mu.Unlock()
	return b.inner.Set(key, value)
}
func (b *countingBackend) Delete(key []byte) bool { return b.inner.Delete(key) }
func (b *countingBackend) setCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sets
}

// TestRetriedSetExecutesOnce sends the same v2 frame twice (a retry) and
// checks the SET executed once, with the second frame answered from the
// reply cache.
func TestRetriedSetExecutesOnce(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	cb := &countingBackend{inner: st}
	srv := NewServer(cb)
	addr, errc := startServer(t, srv)
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := proto.EncodeFrameV2(nil, 424242, []Query{{Op: OpSet, Key: []byte("once"), Value: []byte("v")}})
	buf := make([]byte, proto.MaxFrameBytes)
	readResp := func() []proto.Response {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		rs, id, off, err := proto.ParseResponseFrameID(buf[:n], nil)
		if err != nil || id != 424242 || off != 0 {
			t.Fatalf("response = id %d off %d err %v", id, off, err)
		}
		return rs
	}

	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if rs := readResp(); len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("first response = %+v", rs)
	}
	// Retry the exact same frame: must be answered, not re-executed.
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if rs := readResp(); len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("replayed response = %+v", rs)
	}
	if n := cb.setCount(); n != 1 {
		t.Fatalf("SET executed %d times, want 1", n)
	}
	if ss := srv.Stats(); ss.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", ss.Replayed)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestDoReturnsNilOnError pins the error contract (regression for the
// partial-read leak): a Do that fails must return nil responses, never a
// partially-filled slice aliasing the receive buffer.
func TestDoReturnsNilOnError(t *testing.T) {
	// A hand-rolled server that answers only the first of two queries, ever.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, proto.MaxFrameBytes)
		for {
			n, raddr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			if _, id, err := proto.ParseFrameID(buf[:n], nil); err == nil {
				half := proto.EncodeResponseFrameV2(nil, id, 0, []proto.Response{
					{Status: proto.StatusOK, Value: []byte("partial")},
				})
				pc.WriteTo(half, raddr)
			}
		}
	}()

	c, err := DialOpts(pc.LocalAddr().String(), ClientOptions{
		Timeout: 60 * time.Millisecond,
		Retries: 1,
		Backoff: time.Millisecond,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resps, err := c.Do([]Query{
		{Op: OpGet, Key: []byte("a")},
		{Op: OpGet, Key: []byte("b")},
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if resps != nil {
		t.Fatalf("resps = %+v, want nil on error (no partial results)", resps)
	}
	if c.Stats().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", c.Stats().Timeouts)
	}
}

// TestEvictionPressureServing checks the arena-full serving path end to end
// over UDP: SETs that the store cannot absorb are answered with StatusError
// — the frame is never dropped — and other queries in the same frame still
// execute.
func TestEvictionPressureServing(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 2 << 20})
	srv := NewServer(st)
	addr, errc := startServer(t, srv)
	defer srv.Close()

	c, err := DialOpts(addr, ClientOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// An object beyond the largest slab class can never be stored.
	huge := make([]byte, 20<<10)
	resps, err := c.Do([]Query{{Op: OpSet, Key: []byte("huge"), Value: huge}})
	if err != nil {
		t.Fatalf("oversized SET frame dropped: %v", err)
	}
	if resps[0].Status != StatusError {
		t.Fatalf("oversized SET status = %d, want StatusError", resps[0].Status)
	}

	// Fill the arena with large objects until eviction churns.
	big := make([]byte, 12<<10)
	for i := 0; i < 300; i++ {
		resps, err := c.Do([]Query{{Op: OpSet, Key: []byte(fmt.Sprintf("big:%03d", i)), Value: big}})
		if err != nil {
			t.Fatalf("fill SET %d: %v", i, err)
		}
		if resps[0].Status != StatusOK {
			t.Fatalf("fill SET %d status = %d", i, resps[0].Status)
		}
	}
	if ev := st.Stats().Evictions; ev == 0 {
		t.Fatal("arena never came under pressure — test sized wrong")
	}

	// A small object needs a class the exhausted arena cannot grow; the
	// server must answer StatusError and still serve the GET in-frame.
	resps, err = c.Do([]Query{
		{Op: OpSet, Key: []byte("small"), Value: []byte("x")},
		{Op: OpGet, Key: []byte("big:299")},
	})
	if err != nil {
		t.Fatalf("pressure frame dropped: %v", err)
	}
	if resps[0].Status != StatusError {
		t.Fatalf("no-memory SET status = %d, want StatusError", resps[0].Status)
	}
	if resps[1].Status != StatusOK || len(resps[1].Value) != len(big) {
		t.Fatalf("GET in pressure frame = %d (%d bytes)", resps[1].Status, len(resps[1].Value))
	}
	srv.Close()
	waitServe(t, errc)
}

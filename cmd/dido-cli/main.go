// Command dido-cli is a small client for dido-server.
//
// Usage:
//
//	dido-cli -addr 127.0.0.1:11311 set user:1 '{"name":"ada"}'
//	dido-cli -addr 127.0.0.1:11311 get user:1
//	dido-cli -addr 127.0.0.1:11311 del user:1
//	dido-cli -addr 127.0.0.1:11311 ping      # round-trip latency check
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "server UDP address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := dido.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch args[0] {
	case "get":
		need(args, 2)
		v, ok, err := c.Get([]byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "set":
		need(args, 3)
		if err := c.Set([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
	case "del":
		need(args, 2)
		existed, err := c.Delete([]byte(args[1]))
		if err != nil {
			fatal(err)
		}
		if existed {
			fmt.Println("deleted")
		} else {
			fmt.Println("(not found)")
			os.Exit(1)
		}
	case "ping":
		key := []byte("__dido_ping__")
		start := time.Now()
		if err := c.Set(key, []byte("pong")); err != nil {
			fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			fatal(err)
		}
		c.Delete(key)
		fmt.Printf("round trips ok in %v\n", time.Since(start))
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dido-cli [-addr host:port] get <key> | set <key> <value> | del <key> | ping")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// Command dido-loadgen drives a dido-server with one of the paper's 24
// standard workloads over UDP, batching queries per frame the way the
// evaluation does (§V-A), and reports achieved throughput.
//
// Usage:
//
//	dido-loadgen -addr 127.0.0.1:11311 -workload K16-G95-S -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "server UDP address")
	wl := flag.String("workload", "K16-G95-U", "standard workload name (see README)")
	dur := flag.Duration("duration", 10*time.Second, "run duration")
	batch := flag.Int("batch", 128, "queries per frame")
	pop := flag.Uint64("population", 100000, "key population")
	warm := flag.Bool("warm", true, "pre-load the population before measuring")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	spec, ok := workload.SpecByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; options:\n", *wl)
		for _, s := range workload.StandardSpecs() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}

	c, err := dido.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	defer c.Close()

	gen := workload.NewGenerator(spec, *pop, *seed)
	if *warm {
		fmt.Printf("warming %d keys...\n", *pop)
		val := make([]byte, spec.ValueSize)
		var buf []byte
		var qs []dido.Query
		for i := uint64(1); i <= *pop; i++ {
			buf = gen.KeyAt(i, nil)
			qs = append(qs, dido.Query{Op: dido.OpSet, Key: buf, Value: val})
			if len(qs) >= *batch {
				if _, err := c.Do(qs); err != nil {
					fmt.Fprintln(os.Stderr, "warm:", err)
					os.Exit(1)
				}
				qs = qs[:0]
			}
		}
		if len(qs) > 0 {
			c.Do(qs)
		}
	}

	fmt.Printf("running %s for %v (batch %d)...\n", spec.Name, *dur, *batch)
	deadline := time.Now().Add(*dur)
	var sent, hits, misses uint64
	start := time.Now()
	for time.Now().Before(deadline) {
		qs := gen.Batch(*batch)
		resps, err := c.Do(qs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "do:", err)
			os.Exit(1)
		}
		sent += uint64(len(qs))
		for i, r := range resps {
			if qs[i].Op != dido.OpGet {
				continue
			}
			if r.Status == dido.StatusOK {
				hits++
			} else {
				misses++
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("sent %d queries in %v: %.1f KOPS, GET hit rate %.3f\n",
		sent, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds()/1000,
		float64(hits)/float64(maxU(hits+misses, 1)))
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Command dido-loadgen drives a dido-server with one of the paper's 24
// standard workloads over UDP, batching queries per frame the way the
// evaluation does (§V-A), and reports achieved throughput. With -resp the
// same workloads drive the TCP/RESP2 frontend instead, pipelining one
// command per query so a batch still round-trips on one write.
//
// The client retries lost frames with exponential backoff (-timeout,
// -retries, -backoff) and tolerates overload shedding: StatusBusy rounds are
// retried, and exhausted requests are counted rather than aborting the run.
// The -fault-* flags put a deterministic fault injector on the client socket
// for chaos testing against an unmodified server.
//
// With -scrape, the load generator doubles as an observability smoke check:
// it scrapes the server's admin /metrics endpoint before and after the run,
// prints counter deltas, and fetches /config and /trace. -scrape-assert turns
// violations (a non-monotonic *_total counter, an unreachable endpoint, a
// zero served count) into a non-zero exit for CI.
//
// Usage:
//
//	dido-loadgen -addr 127.0.0.1:11311 -workload K16-G95-S -duration 10s
//	dido-loadgen -fault-drop 0.1 -fault-dup 0.05 -retries 10 -timeout 100ms
//	dido-loadgen -scrape http://127.0.0.1:9090 -scrape-assert
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/faults"
	"repro/internal/frontend"
	"repro/internal/proto"
	"repro/internal/workload"
)

// kvClient is the slice of the UDP and RESP clients the driver loop needs.
type kvClient interface {
	Do([]dido.Query) ([]dido.Response, error)
	Close() error
}

// roundRobin cycles frames across source sockets so a REUSEPORT-sharded
// server sees more than one 4-tuple. The driver loop is single-threaded, so
// no lock guards next.
type roundRobin struct {
	conns []kvClient
	next  int
}

func (r *roundRobin) Do(qs []dido.Query) ([]dido.Response, error) {
	c := r.conns[r.next]
	r.next = (r.next + 1) % len(r.conns)
	return c.Do(qs)
}

func (r *roundRobin) Close() error {
	var first error
	for _, c := range r.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "server address (UDP binary, or TCP RESP with -resp)")
	resp := flag.Bool("resp", false, "drive the TCP/RESP2 frontend instead of the UDP binary protocol")
	assertHitRate := flag.Float64("assert-min-hit-rate", 0, "exit non-zero if the final GET hit rate is below this (0 disables)")
	wl := flag.String("workload", "K16-G95-U", "standard workload name (see README)")
	dur := flag.Duration("duration", 10*time.Second, "run duration")
	batch := flag.Int("batch", 128, "queries per frame")
	srcConns := flag.Int("src-conns", 1, "source sockets to round-robin frames across (use >= the server's -net-queues so SO_REUSEPORT hashing can spread load over every queue)")
	pop := flag.Uint64("population", 100000, "key population")
	warm := flag.Bool("warm", true, "pre-load the population before measuring")
	seed := flag.Int64("seed", 1, "generator seed")
	scanRatio := flag.Float64("scan-ratio", 0, "fraction of queries replaced with SCAN range reads starting at a random population key (needs a server with an ordered index)")
	scanLimit := flag.Int("scan-limit", 64, "entries per SCAN (with -scan-ratio)")

	report := flag.Duration("report", 0, "progress report interval (0 disables)")

	timeout := flag.Duration("timeout", dido.DefaultClientTimeout, "per-attempt response timeout")
	retries := flag.Int("retries", dido.DefaultClientRetries, "resend attempts per frame (negative disables)")
	backoff := flag.Duration("backoff", dido.DefaultClientBackoff, "initial retry backoff (doubles, jittered)")

	faultDrop := flag.Float64("fault-drop", 0, "inject: datagram drop rate [0,1], both directions")
	faultDup := flag.Float64("fault-dup", 0, "inject: datagram duplication rate [0,1]")
	faultReorder := flag.Float64("fault-reorder", 0, "inject: datagram reorder rate [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "inject: datagram corruption rate [0,1]")
	faultDelay := flag.Duration("fault-delay", 0, "inject: per-datagram delay")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (deterministic)")

	scrape := flag.String("scrape", "", "admin base URL to scrape before/after the run, e.g. http://127.0.0.1:9090")
	scrapeAssert := flag.Bool("scrape-assert", false, "exit non-zero on scrape violations (needs -scrape)")
	flag.Parse()

	spec, ok := workload.SpecByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; options:\n", *wl)
		for _, s := range workload.StandardSpecs() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(2)
	}

	if *srcConns < 1 {
		*srcConns = 1
	}
	profile := faults.Profile{
		Drop:    *faultDrop,
		Dup:     *faultDup,
		Reorder: *faultReorder,
		Corrupt: *faultCorrupt,
		Delay:   *faultDelay,
	}
	injectFaults := profile != (faults.Profile{})
	if injectFaults {
		if *resp {
			fmt.Fprintln(os.Stderr, "-fault-* flags inject on the UDP socket and cannot combine with -resp")
			os.Exit(2)
		}
		fmt.Printf("fault injection armed: drop=%.2f dup=%.2f reorder=%.2f corrupt=%.2f delay=%v seed=%d\n",
			*faultDrop, *faultDup, *faultReorder, *faultCorrupt, *faultDelay, *faultSeed)
	}

	// One client per source socket. A REUSEPORT-sharded server hashes flows
	// by 4-tuple, so a single source socket pins every frame to one ingestion
	// queue no matter how many queues the server opened; round-robining over
	// -src-conns distinct sockets lets the kernel spread the load.
	var injectors []*faults.Conn
	var udpClients []*dido.Client
	conns := make([]kvClient, *srcConns)
	for i := range conns {
		if *resp {
			rc, err := frontend.DialRESP(*addr, *timeout)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dial resp:", err)
				os.Exit(1)
			}
			conns[i] = rc
			continue
		}
		opts := dido.ClientOptions{Timeout: *timeout, Retries: *retries, Backoff: *backoff, Seed: *seed + int64(i)}
		if injectFaults {
			opts.WrapConn = func(conn *net.UDPConn) dido.ClientConn {
				inj := faults.Wrap(conn, faults.Symmetric(*faultSeed+int64(len(injectors)), profile))
				injectors = append(injectors, inj)
				return inj
			}
		}
		uc, err := dido.DialOpts(*addr, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dial:", err)
			os.Exit(1)
		}
		udpClients = append(udpClients, uc)
		conns[i] = uc
	}
	c := &roundRobin{conns: conns}
	defer c.Close()

	var before map[string]float64
	if *scrape != "" {
		m, err := scrapeMetrics(*scrape)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			if *scrapeAssert {
				os.Exit(1)
			}
		}
		before = m
	}

	if *scanRatio < 0 || *scanRatio > 1 {
		fmt.Fprintln(os.Stderr, "-scan-ratio must be in [0,1]")
		os.Exit(2)
	}
	scanRng := rand.New(rand.NewSource(*seed + 7919))

	gen := workload.NewGenerator(spec, *pop, *seed)
	if *warm {
		fmt.Printf("warming %d keys...\n", *pop)
		val := make([]byte, spec.ValueSize)
		var buf []byte
		var qs []dido.Query
		for i := uint64(1); i <= *pop; i++ {
			buf = gen.KeyAt(i, nil)
			qs = append(qs, dido.Query{Op: dido.OpSet, Key: buf, Value: val})
			if len(qs) >= *batch {
				if _, err := c.Do(qs); err != nil {
					fmt.Fprintln(os.Stderr, "warm:", err)
					os.Exit(1)
				}
				qs = qs[:0]
			}
		}
		if len(qs) > 0 {
			c.Do(qs)
		}
	}

	fmt.Printf("running %s for %v (batch %d, %d source conns)...\n", spec.Name, *dur, *batch, *srcConns)
	deadline := time.Now().Add(*dur)
	var sent, hits, misses, failedBusy, failedTimeout uint64
	var scansSent, scanEntriesGot, scanErrs uint64
	start := time.Now()
	lastReport, lastSent := start, uint64(0)
	for time.Now().Before(deadline) {
		if *report > 0 {
			if now := time.Now(); now.Sub(lastReport) >= *report {
				// Interval throughput, so pipeline reconfiguration and
				// convergence are visible as the run progresses.
				window := now.Sub(lastReport)
				fmt.Printf("t=%v %.1f KOPS (interval)\n",
					now.Sub(start).Round(time.Second),
					float64(sent-lastSent)/window.Seconds()/1000)
				lastReport, lastSent = now, sent
			}
		}
		qs := gen.Batch(*batch)
		if *scanRatio > 0 {
			for i := range qs {
				if scanRng.Float64() < *scanRatio {
					start := gen.KeyAt(uint64(scanRng.Int63n(int64(*pop)))+1, nil)
					qs[i] = proto.ScanQuery(start, nil, *scanLimit)
				}
			}
		}
		resps, err := c.Do(qs)
		if err != nil {
			// Under overload or heavy loss a request can exhaust its retry
			// budget; count it and keep driving rather than aborting.
			switch {
			case errors.Is(err, dido.ErrBusy):
				failedBusy++
				continue
			case errors.Is(err, dido.ErrTimeout):
				failedTimeout++
				continue
			default:
				fmt.Fprintln(os.Stderr, "do:", err)
				os.Exit(1)
			}
		}
		sent += uint64(len(qs))
		for i, r := range resps {
			// RESP sheds per command batch in-band; skip busy replies so the
			// hit rate reflects answered GETs only (UDP busy rounds retry
			// inside Do and never reach here).
			if r.Status == dido.StatusBusy {
				failedBusy++
				continue
			}
			if qs[i].Op == dido.OpScan {
				scansSent++
				if r.Status == dido.StatusOK {
					n, err := proto.DecodeScanResult(r.Value, func(_, _ []byte) bool { return true })
					if err != nil {
						scanErrs++
					} else {
						scanEntriesGot += uint64(n)
					}
				} else {
					scanErrs++
				}
				continue
			}
			if qs[i].Op != dido.OpGet {
				continue
			}
			if r.Status == dido.StatusOK {
				hits++
			} else {
				misses++
			}
		}
	}
	elapsed := time.Since(start)
	hitRate := float64(hits) / float64(maxU(hits+misses, 1))
	fmt.Printf("sent %d queries in %v: %.1f KOPS, GET hit rate %.3f\n",
		sent, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds()/1000, hitRate)
	if len(udpClients) > 0 {
		var cs dido.ClientStats
		for _, uc := range udpClients {
			s := uc.Stats()
			cs.Retries += s.Retries
			cs.Timeouts += s.Timeouts
			cs.BusyRounds += s.BusyRounds
		}
		fmt.Printf("resilience: retries=%d timeouts=%d busy-rounds=%d failed[busy=%d timeout=%d]\n",
			cs.Retries, cs.Timeouts, cs.BusyRounds, failedBusy, failedTimeout)
	} else {
		fmt.Printf("resilience: failed[busy=%d timeout=%d]\n", failedBusy, failedTimeout)
	}
	if *scanRatio > 0 {
		fmt.Printf("scans: sent=%d entries=%d errors=%d\n", scansSent, scanEntriesGot, scanErrs)
		if scansSent > 0 && scanErrs == scansSent {
			fmt.Fprintln(os.Stderr, "every SCAN failed — is the server running with -ordered?")
			os.Exit(1)
		}
	}
	if *assertHitRate > 0 && hitRate < *assertHitRate {
		fmt.Fprintf(os.Stderr, "GET hit rate %.3f below required %.3f\n", hitRate, *assertHitRate)
		os.Exit(1)
	}
	if len(injectors) > 0 {
		var fs faults.Stats
		for _, inj := range injectors {
			s := inj.Stats()
			fs.Dropped += s.Dropped
			fs.Duplicated += s.Duplicated
			fs.Reordered += s.Reordered
			fs.Corrupted += s.Corrupted
			fs.Delayed += s.Delayed
		}
		fmt.Printf("faults injected: drop=%d dup=%d reorder=%d corrupt=%d delayed=%d\n",
			fs.Dropped, fs.Duplicated, fs.Reordered, fs.Corrupted, fs.Delayed)
	}

	if *scrape != "" {
		// A run that warmed or carries SETs must have advanced the WAL
		// counters on a durable server; GET-only unwarmed runs commit nothing.
		expectWrites := *warm || spec.GetRatio < 1
		if err := checkScrape(*scrape, before, expectWrites, scansSent, scanEntriesGot); err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			if *scrapeAssert {
				os.Exit(1)
			}
		}
	}
}

// scrapeMetrics fetches base+"/metrics" and parses the Prometheus text
// exposition into sample (name with labels) → value. Comment lines are
// skipped; anything else must parse, so a malformed exposition fails loudly.
func scrapeMetrics(base string) (map[string]float64, error) {
	body, err := adminGet(base + "/metrics")
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}

// checkScrape re-scrapes the admin endpoint after the run and audits it
// against the pre-run snapshot: every *_total counter must be monotonic, the
// server must have served something, a durable server's WAL counters must
// have advanced when the run carried writes, and /config and /trace must
// answer with valid JSON. The first violation is returned as an error.
func checkScrape(base string, before map[string]float64, expectWrites bool, scansSent, scanEntries uint64) error {
	after, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	var names []string
	for name := range before {
		if strings.Contains(name, "_total") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	checked := 0
	for _, name := range names {
		v2, ok := after[name]
		if !ok {
			return fmt.Errorf("counter %s vanished between scrapes", name)
		}
		if v2 < before[name] {
			return fmt.Errorf("counter %s went backwards: %v -> %v", name, before[name], v2)
		}
		checked++
	}
	if served := after["dido_served_queries_total"]; served == 0 {
		return fmt.Errorf("dido_served_queries_total is 0 after the run")
	}
	// Durability audit, active only when the server exposes the WAL surface:
	// a write-bearing run against a durable server must have committed and
	// accounted records.
	if _, durable := after["dido_wal_records_total"]; durable && expectWrites {
		if after["dido_wal_records_total"] == 0 {
			return fmt.Errorf("durable server committed no WAL records despite writes")
		}
		if after["dido_wal_bytes_total"] == 0 {
			return fmt.Errorf("dido_wal_bytes_total is 0 with %v records committed", after["dido_wal_records_total"])
		}
	}
	// Scan audit: a run that sent SCANs against a scannable server must have
	// advanced the dido_scan_* counters (requests always; entries whenever the
	// client actually decoded some back).
	if scansSent > 0 {
		if after["dido_scan_requests_total"] <= before["dido_scan_requests_total"] {
			return fmt.Errorf("sent %d SCANs but dido_scan_requests_total did not advance (%v -> %v)",
				scansSent, before["dido_scan_requests_total"], after["dido_scan_requests_total"])
		}
		if scanEntries > 0 && after["dido_scan_entries_total"] <= before["dido_scan_entries_total"] {
			return fmt.Errorf("decoded %d scan entries but dido_scan_entries_total did not advance", scanEntries)
		}
	}
	fmt.Printf("scrape: %d samples, %d *_total counters monotonic, served=%.0f frames=%.0f wal-records=%.0f\n",
		len(after), checked, after["dido_served_queries_total"], after["dido_frames_total"],
		after["dido_wal_records_total"])
	for _, path := range []string{"/config", "/trace"} {
		body, err := adminGet(base + path)
		if err != nil {
			// /trace 404s when the server runs without -adapt; that is a
			// configuration, not a violation.
			if path == "/trace" && errors.Is(err, errNotFound) {
				continue
			}
			return err
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("%s: not JSON: %v", path, err)
		}
	}
	return nil
}

var errNotFound = errors.New("not found")

func adminGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %v", url, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("GET %s: %w", url, errNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return body, nil
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Command dido-server runs the real (non-simulated) in-memory key-value
// store as a UDP server speaking the batched binary protocol.
//
// The server sheds load with StatusBusy when more than -max-inflight frames
// are in flight, deduplicates retried frames by request ID, and survives
// malformed or poisoned frames. The -fault-* flags put a deterministic fault
// injector in front of the socket (drop / duplicate / reorder / corrupt /
// delay, both directions) for chaos testing.
//
// Usage:
//
//	dido-server -addr 127.0.0.1:11311 -mem 268435456
//	dido-server -fault-drop 0.1 -fault-dup 0.05 -fault-reorder 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/faults"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "UDP listen address (binary batched protocol)")
	textAddr := flag.String("text", "", "optional TCP listen address for the memcached ASCII protocol")
	mem := flag.Int64("mem", 256<<20, "key-value arena bytes")
	shards := flag.Int("shards", 0, "store shards (power of two, 0 = 1; divides the arena budget)")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	maxInflight := flag.Int("max-inflight", dido.DefaultMaxInFlight, "frames processed concurrently before shedding with StatusBusy")
	replyCache := flag.Int("reply-cache", dido.DefaultReplyCacheSize, "retried-request reply cache entries (negative disables)")
	maxSessions := flag.Int("text-max-sessions", 0, "text protocol session budget (0 = unlimited)")

	faultDrop := flag.Float64("fault-drop", 0, "inject: datagram drop rate [0,1], both directions")
	faultDup := flag.Float64("fault-dup", 0, "inject: datagram duplication rate [0,1]")
	faultReorder := flag.Float64("fault-reorder", 0, "inject: datagram reorder rate [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "inject: datagram corruption rate [0,1]")
	faultDelay := flag.Duration("fault-delay", 0, "inject: per-datagram delay")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (deterministic)")
	flag.Parse()

	st := dido.NewStore(dido.StoreConfig{MemoryBytes: *mem, Shards: *shards})
	opts := dido.ServerOptions{MaxInFlight: *maxInflight, ReplyCacheSize: *replyCache}

	profile := faults.Profile{
		Drop:    *faultDrop,
		Dup:     *faultDup,
		Reorder: *faultReorder,
		Corrupt: *faultCorrupt,
		Delay:   *faultDelay,
	}
	var injector *faults.Conn
	if profile != (faults.Profile{}) {
		opts.WrapConn = func(pc net.PacketConn) net.PacketConn {
			injector = faults.Wrap(pc, faults.Symmetric(*faultSeed, profile))
			return injector
		}
		log.Printf("fault injection armed: drop=%.2f dup=%.2f reorder=%.2f corrupt=%.2f delay=%v seed=%d",
			*faultDrop, *faultDup, *faultReorder, *faultCorrupt, *faultDelay, *faultSeed)
	}

	srv := dido.NewServerOpts(st, opts)
	go func() {
		if err := srv.Serve(*addr); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}()
	// Wait for bind so the printed address is real.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	log.Printf("dido-server listening on %s (arena %d MB, max-inflight %d)", srv.Addr(), *mem>>20, *maxInflight)

	var textSrv *dido.TextServer
	if *textAddr != "" {
		textSrv = dido.NewTextServer(st)
		textSrv.MaxSessions = *maxSessions
		go func() {
			if err := textSrv.Serve(*textAddr); err != nil {
				log.Fatalf("text serve: %v", err)
			}
		}()
		for textSrv.Addr() == nil {
			time.Sleep(time.Millisecond)
		}
		log.Printf("memcached ASCII protocol on %s (tcp)", textSrv.Addr())
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := st.Stats()
				ss := srv.Stats()
				line := fmt.Sprintf("served=%d frames=%d shed=%d replayed=%d dup-dropped=%d malformed=%d panics=%d inflight=%d live=%d hits=%d misses=%d evictions=%d load=%.2f",
					ss.Served, ss.Frames, ss.Shed, ss.Replayed, ss.DupDropped, ss.Malformed, ss.Panics, ss.InFlight,
					s.LiveObjects, s.Hits, s.Misses, s.Evictions, s.IndexLoadFactor)
				if injector != nil {
					fs := injector.Stats()
					line += fmt.Sprintf(" faults[drop=%d dup=%d reorder=%d corrupt=%d]",
						fs.Dropped, fs.Duplicated, fs.Reordered, fs.Corrupted)
				}
				log.Print(line)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down (draining in-flight frames)")
	if textSrv != nil {
		textSrv.Close()
	}
	srv.Close()
}

// Command dido-server runs the real (non-simulated) in-memory key-value
// store as a UDP server speaking the batched binary protocol.
//
// The server sheds load with StatusBusy when more than -max-inflight frames
// are in flight, deduplicates retried frames by request ID, and survives
// malformed or poisoned frames. The -fault-* flags put a deterministic fault
// injector in front of the socket (drop / duplicate / reorder / corrupt /
// delay, both directions) for chaos testing.
//
// With -pipeline on, admitted frames are served through the batched
// task-granular pipeline (DIDO's staged execution) instead of a goroutine per
// frame; -adapt additionally closes the paper's adaptation loop, re-planning
// the pipeline online from measured per-batch profiles.
//
// Usage:
//
//	dido-server -addr 127.0.0.1:11311 -mem 268435456
//	dido-server -pipeline on -adapt -batch-interval 500us
//	dido-server -fault-drop 0.1 -fault-dup 0.05 -fault-reorder 0.1
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/wal"
)

// waitForBind blocks until addr reports a bound address and returns it. The
// serve functions can return a nil error without ever binding (the server
// closed between Listen and register), so a bare busy-wait could spin
// forever; watching the serve goroutine's exit and a generous deadline
// turns both of those into a clean startup failure instead.
func waitForBind(name string, addr func() net.Addr, served <-chan struct{}) net.Addr {
	deadline := time.NewTimer(10 * time.Second)
	defer deadline.Stop()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if a := addr(); a != nil {
			return a
		}
		select {
		case <-served:
			if a := addr(); a != nil {
				return a
			}
			log.Fatalf("%s: server exited before binding", name)
		case <-deadline.C:
			log.Fatalf("%s: no listener bound within 10s", name)
		case <-tick.C:
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "UDP listen address (binary batched protocol)")
	respAddr := flag.String("resp", "", "optional TCP listen address for the RESP2 (Redis) protocol")
	textAddr := flag.String("text", "", "optional TCP listen address for the memcached ASCII protocol")
	mem := flag.Int64("mem", 256<<20, "key-value arena bytes")
	shards := flag.Int("shards", 0, "store shards (power of two, 0 = 1; divides the arena budget)")
	statsEvery := flag.Duration("stats-interval", 10*time.Second, "stats print interval (0 disables)")
	maxInflight := flag.Int("max-inflight", dido.DefaultMaxInFlight, "frames processed concurrently before shedding with StatusBusy")
	replyCache := flag.Int("reply-cache", dido.DefaultReplyCacheSize, "retried-request reply cache entries (negative disables)")
	maxSessions := flag.Int("text-max-sessions", 0, "text protocol session budget (0 = share -max-conns with the RESP frontend)")
	maxConns := flag.Int("max-conns", 0, "stream connection budget across RESP + text frontends (0 = default 1024, negative = unlimited)")
	respInflight := flag.Int("resp-conn-inflight", 0, "per-RESP-connection in-flight command-batch cap before shedding with -BUSY (0 = default)")
	netQueues := flag.Int("net-queues", 1, "SO_REUSEPORT ingestion queues per frontend (UDP sockets / RESP listeners; clamped to 1 without kernel support, sized down by -adapt when extra readers cannot pay)")

	pipelineMode := flag.String("pipeline", "off", "serving path: off = goroutine per frame, on = batched task-granular pipeline")
	batchInterval := flag.Duration("batch-interval", 500*time.Microsecond, "pipeline: max wait before a partial batch executes")
	adapt := flag.Bool("adapt", false, "pipeline: online reconfiguration from measured per-batch profiles")
	wideMin := flag.Int("wide-min", 0, "pipeline: min GETs per batch for the wide batched index path (0 = default, negative = disable)")
	steal := flag.Bool("steal", false, "pipeline: chunk-granular work stealing across stage groups (with -adapt the cost model gates it per plan)")
	hotKeys := flag.Int("hot-keys", 0, "hot-key fast-path slots: sampled hot GETs served before the index probe (0 disables)")
	ordered := flag.Bool("ordered", true, "maintain the MVCC ordered index beside the cuckoo table (enables SCAN; costs one tree upsert per write)")

	adminAddr := flag.String("admin", "", "HTTP observability address, e.g. :9090 (/metrics, /config, /trace, /slowlog, /debug/pprof; empty disables)")
	slowQuery := flag.Duration("slow-query", 0, "record frames slower than this (0 disables the slow-query log)")
	slowSample := flag.Int("slow-query-sample", 1, "record 1 of every N over-threshold frames")
	slowEntries := flag.Int("slow-query-log", obs.DefaultSlowLogSize, "slow-query ring entries")

	walDir := flag.String("wal", "", "durability directory for the write-ahead log + snapshots (empty disables durability)")
	walSync := flag.String("wal-sync", "batch", "WAL sync policy: batch (fsync before every ack), off, or a duration for interval syncing (e.g. 10ms)")
	snapInterval := flag.Duration("snapshot-interval", time.Minute, "snapshot + WAL-truncate period (0 disables periodic snapshots)")

	faultDiskShort := flag.Float64("fault-disk-short", 0, "inject: WAL short-write rate [0,1]")
	faultDiskWriteErr := flag.Float64("fault-disk-write-err", 0, "inject: WAL write failure rate [0,1]")
	faultDiskSyncErr := flag.Float64("fault-disk-sync-err", 0, "inject: WAL fsync failure rate [0,1]")
	faultDiskSyncDelay := flag.Duration("fault-disk-sync-delay", 0, "inject: per-fsync delay")
	faultDiskSeed := flag.Int64("fault-disk-seed", 1, "disk fault injector seed (deterministic)")

	faultDrop := flag.Float64("fault-drop", 0, "inject: datagram drop rate [0,1], both directions")
	faultDup := flag.Float64("fault-dup", 0, "inject: datagram duplication rate [0,1]")
	faultReorder := flag.Float64("fault-reorder", 0, "inject: datagram reorder rate [0,1]")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "inject: datagram corruption rate [0,1]")
	faultDelay := flag.Duration("fault-delay", 0, "inject: per-datagram delay")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (deterministic)")

	faultConnStallRate := flag.Float64("fault-conn-stall-rate", 0, "inject: per-read/write stall rate on stream conns [0,1]")
	faultConnStall := flag.Duration("fault-conn-stall", 0, "inject: stream stall duration (with -fault-conn-stall-rate)")
	faultConnCorrupt := flag.Float64("fault-conn-corrupt", 0, "inject: stream read corruption rate [0,1]")
	faultConnShort := flag.Float64("fault-conn-short", 0, "inject: stream short-read (torn command) rate [0,1]")
	flag.Parse()

	st := dido.NewStore(dido.StoreConfig{MemoryBytes: *mem, Shards: *shards, HotKeys: *hotKeys, Ordered: *ordered})
	opts := dido.ServerOptions{
		MaxInFlight:      *maxInflight,
		ReplyCacheSize:   *replyCache,
		MaxConns:         *maxConns,
		RESPConnInFlight: *respInflight,
		NetQueues:        *netQueues,
	}
	streamFaults := faults.StreamConfig{
		Seed:        *faultSeed,
		StallRate:   *faultConnStallRate,
		Stall:       *faultConnStall,
		CorruptRate: *faultConnCorrupt,
		ShortRate:   *faultConnShort,
	}
	if streamFaults.StallRate > 0 || streamFaults.CorruptRate > 0 || streamFaults.ShortRate > 0 {
		opts.WrapStreamConn = func(c net.Conn) net.Conn { return faults.WrapStream(c, streamFaults) }
		log.Printf("stream fault injection armed: stall=%.2f×%v corrupt=%.2f short=%.2f seed=%d",
			*faultConnStallRate, *faultConnStall, *faultConnCorrupt, *faultConnShort, *faultSeed)
	}
	if *walDir != "" {
		dopts := &dido.DurabilityOptions{Dir: *walDir, SnapshotInterval: *snapInterval}
		switch *walSync {
		case "batch":
			dopts.Sync = wal.SyncBatch
		case "off":
			dopts.Sync = wal.SyncOff
		default:
			iv, err := time.ParseDuration(*walSync)
			if err != nil || iv <= 0 {
				log.Fatalf("-wal-sync must be batch, off or a positive duration, got %q", *walSync)
			}
			dopts.Sync = wal.SyncInterval
			dopts.SyncInterval = iv
		}
		disk := faults.DiskConfig{
			Seed:       *faultDiskSeed,
			ShortWrite: *faultDiskShort,
			WriteErr:   *faultDiskWriteErr,
			SyncErr:    *faultDiskSyncErr,
			SyncDelay:  *faultDiskSyncDelay,
		}
		if disk.Enabled() {
			dopts.OpenFile = func(path string) (wal.File, error) {
				f, err := wal.DefaultOpenFile(path)
				if err != nil {
					return nil, err
				}
				return faults.WrapFile(f, disk), nil
			}
			log.Printf("disk fault injection armed: short=%.2f write-err=%.2f sync-err=%.2f sync-delay=%v seed=%d",
				*faultDiskShort, *faultDiskWriteErr, *faultDiskSyncErr, *faultDiskSyncDelay, *faultDiskSeed)
		}
		opts.Durability = dopts
	}
	var slowLog *obs.SlowLog
	if *slowQuery > 0 {
		slowLog = obs.NewSlowLog(*slowQuery, *slowEntries, *slowSample)
		opts.SlowLog = slowLog
	}
	var trace *obs.TraceRing
	switch *pipelineMode {
	case "on":
		if *adminAddr != "" && *adapt {
			trace = obs.NewTraceRing(0)
		}
		opts.Pipeline = &dido.PipelineOptions{BatchInterval: *batchInterval, Adapt: *adapt, WideMinGets: *wideMin, Steal: *steal, Trace: trace}
	case "off":
	default:
		log.Fatalf("-pipeline must be on or off, got %q", *pipelineMode)
	}

	profile := faults.Profile{
		Drop:    *faultDrop,
		Dup:     *faultDup,
		Reorder: *faultReorder,
		Corrupt: *faultCorrupt,
		Delay:   *faultDelay,
	}
	// With -net-queues > 1 the WrapConn hook fires once per REUSEPORT
	// socket, so the injectors accumulate into a slice and the stats line
	// sums them.
	var injectorMu sync.Mutex
	var injectors []*faults.Conn
	if profile != (faults.Profile{}) {
		opts.WrapConn = func(pc net.PacketConn) net.PacketConn {
			injectorMu.Lock()
			defer injectorMu.Unlock()
			inj := faults.Wrap(pc, faults.Symmetric(*faultSeed+int64(len(injectors)), profile))
			injectors = append(injectors, inj)
			return inj
		}
		log.Printf("fault injection armed: drop=%.2f dup=%.2f reorder=%.2f corrupt=%.2f delay=%v seed=%d",
			*faultDrop, *faultDup, *faultReorder, *faultCorrupt, *faultDelay, *faultSeed)
	}

	srv, err := dido.NewServerDurable(st, opts)
	if err != nil {
		log.Fatalf("open server: %v", err)
	}
	if ds, ok := srv.DurabilityStats(); ok {
		log.Printf("durability on: dir=%s sync=%s recovered %d snapshot entries + %d WAL records in %v (torn tail: %d bytes)",
			*walDir, *walSync, ds.RecoveredSnapshotEntries, ds.RecoveredWALRecords,
			ds.RecoveryDuration.Round(time.Microsecond), ds.RecoveredTornBytes)
		if ds.RecoveryDroppedApplies > 0 {
			log.Printf("WARNING: recovery dropped %d SET applications (arena too small for the recovered state?); previously durable keys are missing", ds.RecoveryDroppedApplies)
		}
	}
	udpServed := make(chan struct{})
	go func() {
		defer close(udpServed)
		if err := srv.Serve(*addr); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}()
	// Wait for bind so the printed address is real.
	log.Printf("dido-server listening on %s (arena %d MB, max-inflight %d, pipeline=%s adapt=%v)",
		waitForBind("udp", srv.Addr, udpServed), *mem>>20, *maxInflight, *pipelineMode, *adapt)
	if *netQueues > 1 {
		log.Printf("ingestion queues: requested %d, effective %d (SO_REUSEPORT sharded readers)",
			*netQueues, srv.NetQueues())
	}

	if *respAddr != "" {
		respServed := make(chan struct{})
		go func() {
			defer close(respServed)
			if err := srv.ServeRESP(*respAddr); err != nil {
				log.Fatalf("resp serve: %v", err)
			}
		}()
		log.Printf("RESP2 (Redis) protocol on %s (tcp; GET/SET/DEL/MGET/PING)",
			waitForBind("resp", srv.RESPAddr, respServed))
	}

	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(obs.AdminOptions{
			Collect: func(w *obs.MetricsWriter) {
				srv.CollectMetrics(w)
				st.CollectMetrics(w)
			},
			Config:  func() any { return srv.ConfigView() },
			Trace:   trace,
			SlowLog: slowLog,
		})
		if err := admin.Start(*adminAddr); err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		log.Printf("admin endpoint on http://%s (/metrics /config /trace /slowlog /debug/pprof)", admin.Addr())
	}

	var textSrv *dido.TextServer
	if *textAddr != "" {
		textSrv = dido.NewTextServer(st)
		if *maxSessions > 0 {
			textSrv.MaxSessions = *maxSessions
		} else {
			// Share one connection budget with the RESP frontend so a flood on
			// either protocol sheds globally.
			textSrv.Gate = srv.ConnGate()
		}
		srv.AttachFrontendStats(textSrv)
		textServed := make(chan struct{})
		go func() {
			defer close(textServed)
			if err := textSrv.Serve(*textAddr); err != nil {
				log.Fatalf("text serve: %v", err)
			}
		}()
		log.Printf("memcached ASCII protocol on %s (tcp)",
			waitForBind("text", textSrv.Addr, textServed))
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := st.Stats()
				ss := srv.Stats()
				// The server half of the line renders through the same
				// ServerStats.String the /metrics parity tests pin.
				line := fmt.Sprintf("%s live=%d hits=%d misses=%d evictions=%d load=%.2f",
					ss, s.LiveObjects, s.Hits, s.Misses, s.Evictions, s.IndexLoadFactor)
				if *hotKeys > 0 {
					line += fmt.Sprintf(" hot=%d", s.HotHits)
				}
				injectorMu.Lock()
				var fs faults.Stats
				for _, inj := range injectors {
					is := inj.Stats()
					fs.Dropped += is.Dropped
					fs.Duplicated += is.Duplicated
					fs.Reordered += is.Reordered
					fs.Corrupted += is.Corrupted
					fs.Delayed += is.Delayed
				}
				armed := len(injectors) > 0
				injectorMu.Unlock()
				if armed {
					line += fmt.Sprintf(" faults[drop=%d dup=%d reorder=%d corrupt=%d]",
						fs.Dropped, fs.Duplicated, fs.Reordered, fs.Corrupted)
				}
				if ds, ok := srv.DurabilityStats(); ok {
					line += fmt.Sprintf(" | wal records=%d bytes=%d syncs=%d errs=%d drops=%d snaps=%d",
						ds.WAL.Records, ds.WAL.Bytes, ds.WAL.Syncs,
						ds.WAL.WriteErrs+ds.WAL.SyncErrs, ds.DroppedAcks, ds.Snapshots.Snapshots)
				}
				if ps, ok := srv.PipelineStats(); ok {
					line += fmt.Sprintf(" | pipe batches=%d wide=%d target=%d reconfigs=%d shed=%d panics=%d",
						ps.Batches, ps.WideBatches, ps.Target, ps.Reconfigs, ps.SubmitShed, ps.Panics)
					if *steal {
						line += fmt.Sprintf(" steal[batches=%d chunks=%d queries=%d]",
							ps.StealBatches, ps.StolenChunks, ps.StolenQueries)
					}
					if replans, ok := srv.PipelineReplans(); ok {
						line += fmt.Sprintf(" replans=%d", replans)
					}
					if sq, ok := srv.PipelineStageQuantiles(0.5, 0.99, 0.999); ok {
						for si := range sq {
							line += fmt.Sprintf(" s%d[p50=%.0fus p99=%.0fus p999=%.0fus]",
								si+1, sq[si][0], sq[si][1], sq[si][2])
						}
					}
				}
				log.Print(line)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down (draining in-flight frames)")
	if admin != nil {
		admin.Close()
	}
	if textSrv != nil {
		textSrv.Close()
	}
	srv.Close()
}

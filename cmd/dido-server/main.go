// Command dido-server runs the real (non-simulated) in-memory key-value
// store as a UDP server speaking the batched binary protocol.
//
// Usage:
//
//	dido-server -addr 127.0.0.1:11311 -mem 268435456
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "UDP listen address (binary batched protocol)")
	textAddr := flag.String("text", "", "optional TCP listen address for the memcached ASCII protocol")
	mem := flag.Int64("mem", 256<<20, "key-value arena bytes")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	flag.Parse()

	st := dido.NewStore(dido.StoreConfig{MemoryBytes: *mem})
	srv := dido.NewServer(st)

	go func() {
		if err := srv.Serve(*addr); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}()
	// Wait for bind so the printed address is real.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	log.Printf("dido-server listening on %s (arena %d MB)", srv.Addr(), *mem>>20)

	var textSrv *dido.TextServer
	if *textAddr != "" {
		textSrv = dido.NewTextServer(st)
		go func() {
			if err := textSrv.Serve(*textAddr); err != nil {
				log.Fatalf("text serve: %v", err)
			}
		}()
		for textSrv.Addr() == nil {
			time.Sleep(time.Millisecond)
		}
		log.Printf("memcached ASCII protocol on %s (tcp)", textSrv.Addr())
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := st.Stats()
				log.Printf("served=%d live=%d hits=%d misses=%d evictions=%d load=%.2f",
					srv.Served(), s.LiveObjects, s.Hits, s.Misses, s.Evictions, s.IndexLoadFactor)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if textSrv != nil {
		textSrv.Close()
	}
	srv.Close()
}

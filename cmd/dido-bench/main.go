// Command dido-bench regenerates the DIDO paper's evaluation figures on the
// simulated APU.
//
// Usage:
//
//	dido-bench list                 # list available experiments
//	dido-bench all                  # run every experiment
//	dido-bench fig11 fig15          # run specific experiments
//	dido-bench -quick fig11         # reduced scale (fast smoke run)
//	dido-bench -mem 33554432 -batches 50 fig9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run at the reduced smoke-test scale")
	mem := flag.Int64("mem", 0, "override arena bytes per system")
	batches := flag.Int("batches", 0, "override measured batches per run")
	seed := flag.Uint64("seed", 0, "override random seed")
	flag.Parse()

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *mem > 0 {
		sc.MemBytes = *mem
	}
	if *batches > 0 {
		sc.Batches = *batches
	}
	if *seed > 0 {
		sc.Seed = *seed
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range bench.Registry() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if args[0] == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try: dido-bench list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("running %s: %s ...\n", e.ID, e.Title)
		for _, tab := range e.Run(sc) {
			tab.Fprint(os.Stdout)
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dido-bench [-quick] [-mem N] [-batches N] [-seed N] list|all|<figID>...")
}
